package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Dot returns the inner product of a and b.
// It returns an error if the vectors have different lengths.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dot: len %d vs %d: %w", len(a), len(b), ErrDimensionMismatch)
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the L-infinity norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Scale multiplies every element of v by c in place and returns v.
func Scale(v []float64, c float64) []float64 {
	for i := range v {
		v[i] *= c
	}
	return v
}

// Normalize1 scales v in place so that its elements sum to one.
// It returns an error if the element sum is zero or not finite.
func Normalize1(v []float64) error {
	s := Sum(v)
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) { //numvet:allow float-eq exact zero guards the division below
		return fmt.Errorf("normalize: element sum %v is not usable", s)
	}
	Scale(v, 1/s)
	return nil
}

// AXPY computes y[i] += a*x[i] in place.
// It returns an error if the vectors have different lengths.
func AXPY(a float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("axpy: len %d vs %d: %w", len(x), len(y), ErrDimensionMismatch)
	}
	for i := range x {
		y[i] += a * x[i]
	}
	return nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// a and b, or an error when the lengths differ.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("maxabsdiff: len %d vs %d: %w", len(a), len(b), ErrDimensionMismatch)
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
