package linalg

import (
	"context"
	"fmt"
	"math"

	"repro/internal/failpoint"
	"repro/internal/guard"
	"repro/internal/obs"
)

// Failpoints this package declares (see internal/failpoint): injected
// per-sweep/per-step faults surface through the same typed-error plumbing
// as genuine solver failures, so chaos runs exercise the fallback chains.
const (
	fpSORSweep  = "linalg.sor.sweep"
	fpPowerStep = "linalg.power.step"
	fpGTH       = "linalg.gth"
)

// SOROptions controls the stationary-vector SOR/Gauss–Seidel iteration.
type SOROptions struct {
	// Omega is the relaxation factor; 1.0 gives plain Gauss–Seidel.
	Omega float64
	// Tol is the convergence tolerance on the L∞ change per sweep.
	Tol float64
	// MaxIter bounds the number of sweeps.
	MaxIter int
	// X0 optionally seeds the iteration; it is copied, not mutated.
	X0 []float64
	// Recorder receives per-sweep convergence telemetry (nil disables).
	Recorder obs.Recorder
	// Ctx interrupts the iteration between sweeps; nil never interrupts.
	// An interrupted solve returns the partial vector together with a
	// *guard.InterruptError.
	Ctx context.Context
}

// DefaultSOROptions returns the options used when a zero value is supplied.
func DefaultSOROptions() SOROptions {
	return SOROptions{Omega: 1.0, Tol: 1e-12, MaxIter: 100000}
}

// PowerOptions controls PowerIteration. The zero value selects the
// defaults that were previously hard-coded, so existing results are
// unchanged.
type PowerOptions struct {
	// Tol is the convergence tolerance on the L∞ change per step.
	Tol float64
	// MaxIter bounds the number of steps.
	MaxIter int
	// Recorder receives per-step convergence telemetry (nil disables).
	Recorder obs.Recorder
	// Ctx interrupts the iteration between steps; nil never interrupts.
	Ctx context.Context
}

// DefaultPowerOptions returns the options used when a zero value is
// supplied.
func DefaultPowerOptions() PowerOptions {
	return PowerOptions{Tol: 1e-13, MaxIter: 200000}
}

// ErrNoConvergence is returned when an iterative method exhausts MaxIter.
type ErrNoConvergence struct {
	Iter     int
	Residual float64
}

func (e *ErrNoConvergence) Error() string {
	return fmt.Sprintf("linalg: no convergence after %d iterations (residual %g)", e.Iter, e.Residual)
}

// FailureClass implements guard.Classed, so fallback chains escalate past
// an exhausted iteration budget.
func (e *ErrNoConvergence) FailureClass() string { return string(guard.ClassNoConvergence) }

// ErrDiverged is returned when an iterative method produces a non-finite
// sweep delta — the iterate left the representable domain, so more sweeps
// cannot recover it.
type ErrDiverged struct {
	Iter  int
	Delta float64
}

func (e *ErrDiverged) Error() string {
	return fmt.Sprintf("linalg: iteration diverged at sweep %d (delta %g)", e.Iter, e.Delta)
}

// FailureClass implements guard.Classed.
func (e *ErrDiverged) FailureClass() string { return string(guard.ClassDivergence) }

// SORSteadyState solves π·Q = 0, Σπ = 1 for an irreducible CTMC generator Q
// in CSR form using successive over-relaxation on the normal form
// π(j) = (Σ_{i≠j} π(i)·q(i,j)) / (-q(j,j)).
//
// The iteration runs on the transposed matrix so each unknown update reads a
// contiguous CSR row. Returns the stationary vector and the number of sweeps
// performed.
func SORSteadyState(q *CSR, opts SOROptions) ([]float64, int, error) {
	n := q.Rows()
	if q.Cols() != n {
		return nil, 0, fmt.Errorf("sor: matrix %dx%d not square: %w", q.Rows(), q.Cols(), ErrDimensionMismatch)
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("sor: empty generator")
	}
	def := DefaultSOROptions()
	if opts.Omega == 0 { //numvet:allow float-eq zero means unset; option-default sentinel
		opts.Omega = def.Omega
	}
	if opts.Tol == 0 { //numvet:allow float-eq zero means unset; option-default sentinel
		opts.Tol = def.Tol
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = def.MaxIter
	}
	if opts.Omega <= 0 || opts.Omega >= 2 {
		return nil, 0, fmt.Errorf("sor: omega %g outside (0,2)", opts.Omega)
	}
	rec := obs.Or(opts.Recorder)
	tracing := rec.Enabled()
	if tracing {
		rec = rec.Span("linalg.sor",
			obs.S("solver", "sor"), obs.I("states", n),
			obs.F("omega", opts.Omega), obs.F("tol", opts.Tol))
		defer rec.End()
	}

	qt := q.Transpose() // row j of qt holds incoming rates q(i,j) plus q(j,j)
	diag := make([]float64, n)
	for j := 0; j < n; j++ {
		d := qt.At(j, j)
		if d >= 0 {
			// Absorbing or malformed diagonal: reconstruct from the row sums
			// of the original matrix if possible.
			var out float64
			q.RowRange(j, func(col int, val float64) {
				if col != j {
					out += val
				}
			})
			if out == 0 { //numvet:allow float-eq exactly-zero diagonal means a structurally reducible generator
				return nil, 0, fmt.Errorf("sor: state %d has no outgoing rate; generator reducible", j)
			}
			d = -out
		}
		diag[j] = d
	}

	pi := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, 0, fmt.Errorf("sor: x0 len %d, want %d: %w", len(opts.X0), n, ErrDimensionMismatch)
		}
		copy(pi, opts.X0)
	} else {
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
	}

	var prevDelta float64
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := guard.Ctx(opts.Ctx, "linalg.sor", iter-1, prevDelta); err != nil {
			guard.RecordInterrupt(rec, err)
			return pi, iter - 1, err
		}
		if err := failpoint.InjectCtx(opts.Ctx, fpSORSweep); err != nil {
			return pi, iter - 1, err
		}
		var maxDelta float64
		for j := 0; j < n; j++ {
			var inflow float64
			qt.RowRange(j, func(col int, val float64) {
				if col != j {
					inflow += pi[col] * val
				}
			})
			next := inflow / -diag[j]
			next = pi[j] + opts.Omega*(next-pi[j])
			if next < 0 {
				next = 0
			}
			if d := math.Abs(next - pi[j]); d > maxDelta {
				maxDelta = d
			}
			pi[j] = next
		}
		if !guard.IsFinite(maxDelta) {
			if tracing {
				rec.Set(obs.I("iterations", iter), obs.S("outcome", "diverged"))
			}
			return pi, iter, &ErrDiverged{Iter: iter, Delta: maxDelta}
		}
		if err := Normalize1(pi); err != nil {
			return nil, iter, fmt.Errorf("sor: %w", err)
		}
		if tracing {
			rec.Iter(iter, maxDelta)
		}
		if maxDelta < opts.Tol {
			if tracing {
				rec.Set(obs.I("iterations", iter),
					obs.F("spectral_radius_est", ratioOrNaN(maxDelta, prevDelta)))
			}
			return pi, iter, nil
		}
		prevDelta = maxDelta
	}
	resid := residualSteadyState(q, pi)
	if tracing {
		rec.Set(obs.I("iterations", opts.MaxIter), obs.F("final_residual", resid))
	}
	return pi, opts.MaxIter, &ErrNoConvergence{Iter: opts.MaxIter, Residual: resid}
}

// ratioOrNaN estimates the iteration-matrix spectral radius from the last
// two sweep deltas: for a linearly converging stationary iteration the
// delta ratio approaches the dominant subdominant eigenvalue magnitude.
func ratioOrNaN(last, prev float64) float64 {
	if prev <= 0 || math.IsNaN(prev) || math.IsNaN(last) {
		return math.NaN()
	}
	return last / prev
}

// residualSteadyState returns ‖π·Q‖∞ as a convergence diagnostic.
func residualSteadyState(q *CSR, pi []float64) float64 {
	r, err := q.VecMul(pi)
	if err != nil {
		return math.NaN()
	}
	return NormInf(r)
}

// PowerIteration computes the stationary distribution of an irreducible,
// aperiodic DTMC with transition matrix P (rows sum to 1) by repeated
// multiplication π ← π·P. Returns the vector and iteration count. Zero tol
// and maxIter select the defaults (see DefaultPowerOptions); use
// PowerIterationOpts for full control and telemetry.
func PowerIteration(p *CSR, tol float64, maxIter int) ([]float64, int, error) {
	return PowerIterationOpts(p, PowerOptions{Tol: tol, MaxIter: maxIter})
}

// PowerIterationOpts is PowerIteration with an options struct: tolerance
// and iteration budget are configurable, and a Recorder collects per-step
// convergence records.
func PowerIterationOpts(p *CSR, opts PowerOptions) ([]float64, int, error) {
	n := p.Rows()
	if p.Cols() != n {
		return nil, 0, fmt.Errorf("power: matrix %dx%d not square: %w", p.Rows(), p.Cols(), ErrDimensionMismatch)
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("power: empty matrix")
	}
	def := DefaultPowerOptions()
	if opts.Tol == 0 { //numvet:allow float-eq zero means unset; option-default sentinel
		opts.Tol = def.Tol
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = def.MaxIter
	}
	rec := obs.Or(opts.Recorder)
	tracing := rec.Enabled()
	if tracing {
		rec = rec.Span("linalg.power",
			obs.S("solver", "power"), obs.I("states", n), obs.F("tol", opts.Tol))
		defer rec.End()
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	var prevDelta float64
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := guard.Ctx(opts.Ctx, "linalg.power", iter-1, prevDelta); err != nil {
			guard.RecordInterrupt(rec, err)
			return pi, iter - 1, err
		}
		if err := failpoint.InjectCtx(opts.Ctx, fpPowerStep); err != nil {
			return pi, iter - 1, err
		}
		next, err := p.VecMul(pi)
		if err != nil {
			return nil, iter, err
		}
		if err := Normalize1(next); err != nil {
			return nil, iter, fmt.Errorf("power: %w", err)
		}
		d, _ := MaxAbsDiff(next, pi)
		if !guard.IsFinite(d) {
			if tracing {
				rec.Set(obs.I("iterations", iter), obs.S("outcome", "diverged"))
			}
			return pi, iter, &ErrDiverged{Iter: iter, Delta: d}
		}
		copy(pi, next)
		if tracing {
			rec.Iter(iter, d)
		}
		if d < opts.Tol {
			if tracing {
				rec.Set(obs.I("iterations", iter),
					obs.F("spectral_radius_est", ratioOrNaN(d, prevDelta)))
			}
			return pi, iter, nil
		}
		prevDelta = d
	}
	if tracing {
		rec.Set(obs.I("iterations", opts.MaxIter))
	}
	return pi, opts.MaxIter, &ErrNoConvergence{Iter: opts.MaxIter, Residual: prevDelta}
}
