package linalg

import (
	"fmt"
	"math"
)

// Expm computes the matrix exponential e^A for a square dense matrix using
// Taylor series with scaling and squaring. Intended for the small matrices
// that arise as phase-type subgenerators (tens of states); state-space
// transient analysis uses uniformization instead.
func Expm(a *Dense) (*Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("expm: matrix %dx%d not square: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	// Scale so that the norm is below 0.5.
	var norm float64
	for i := 0; i < n; i++ {
		s := Norm1(a.Row(i))
		if s > norm {
			norm = s
		}
	}
	squarings := 0
	if norm > 0.5 {
		squarings = int(math.Ceil(math.Log2(norm / 0.5)))
		if squarings > 60 {
			return nil, fmt.Errorf("expm: norm %g too large", norm)
		}
	}
	scaled := a.Clone()
	factor := math.Ldexp(1, -squarings)
	for i := range scaled.data {
		scaled.data[i] *= factor
	}
	// Taylor series: sum_{k=0}^{K} M^k / k!.
	result := identity(n)
	term := identity(n)
	for k := 1; k <= 24; k++ {
		next, err := term.Mul(scaled)
		if err != nil {
			return nil, err
		}
		inv := 1 / float64(k)
		for i := range next.data {
			next.data[i] *= inv
		}
		term = next
		for i := range result.data {
			result.data[i] += term.data[i]
		}
		// Early exit when the term is negligible.
		var tn float64
		for _, v := range term.data {
			if av := math.Abs(v); av > tn {
				tn = av
			}
		}
		if tn < 1e-18 {
			break
		}
	}
	for s := 0; s < squarings; s++ {
		sq, err := result.Mul(result)
		if err != nil {
			return nil, err
		}
		result = sq
	}
	return result, nil
}

func identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
