package linalg

import (
	"errors"
	"math"
	"testing"

	"repro/internal/obs"
)

// threeStateGenerator builds the generator of the canonical 3-state
// availability CTMC (2 up → 1 up → 0 up with shared repair):
//
//	2up --2λ--> 1up --λ--> 0up,  repairs at μ back up the chain.
func threeStateGenerator(t *testing.T, lam, mu float64) *CSR {
	t.Helper()
	coo := NewCOO(3, 3)
	add := func(i, j int, v float64) {
		t.Helper()
		if err := coo.Add(i, j, v); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1, 2*lam)
	add(0, 0, -2*lam)
	add(1, 2, lam)
	add(1, 0, mu)
	add(1, 1, -(lam + mu))
	add(2, 1, mu)
	add(2, 2, -mu)
	return coo.ToCSR()
}

// uniformizedDTMC returns P = I + Q/q for the 3-state chain, a stochastic
// matrix suitable for power iteration.
func uniformizedDTMC(t *testing.T, q *CSR) *CSR {
	t.Helper()
	n := q.Rows()
	var maxExit float64
	for i := 0; i < n; i++ {
		if d := -q.At(i, i); d > maxExit {
			maxExit = d
		}
	}
	rate := maxExit * 1.05
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		diag := 1.0
		q.RowRange(i, func(col int, val float64) {
			if col == i {
				diag += val / rate
				return
			}
			if err := coo.Add(i, col, val/rate); err != nil {
				t.Fatal(err)
			}
		})
		if err := coo.Add(i, i, diag); err != nil {
			t.Fatal(err)
		}
	}
	return coo.ToCSR()
}

// assertIterTelemetry checks the telemetry contract shared by the
// iterative solvers: one record per sweep, 1-based consecutive iteration
// numbers, count matching the solver's return value, and residuals
// decreasing to below tolerance (monotone up to a small grace factor for
// early transients).
func assertIterTelemetry(t *testing.T, iters []obs.IterPoint, wantCount int, tol float64) {
	t.Helper()
	if len(iters) != wantCount {
		t.Fatalf("recorded %d iterations, solver reported %d", len(iters), wantCount)
	}
	for i, p := range iters {
		if p.N != i+1 {
			t.Fatalf("iteration %d recorded as n=%d", i+1, p.N)
		}
		if math.IsNaN(p.Residual) || p.Residual < 0 {
			t.Fatalf("iteration %d residual %g", p.N, p.Residual)
		}
	}
	last := iters[len(iters)-1].Residual
	if last >= tol {
		t.Errorf("final residual %g not below tol %g", last, tol)
	}
	// Geometric convergence: residuals must not grow from one sweep to the
	// next (beyond round-off) once the iteration is underway.
	for i := 1; i < len(iters); i++ {
		if iters[i].Residual > iters[i-1].Residual*(1+1e-9) {
			t.Errorf("residual not monotone: iter %d %g -> iter %d %g",
				iters[i-1].N, iters[i-1].Residual, iters[i].N, iters[i].Residual)
		}
	}
}

func findSpan(t *testing.T, root *obs.Span, name string) *obs.Span {
	t.Helper()
	var found *obs.Span
	root.Walk(func(s *obs.Span) {
		if s.Name == name && found == nil {
			found = s
		}
	})
	if found == nil {
		t.Fatalf("no span %q in trace", name)
	}
	return found
}

func TestSORTelemetryThreeStateCTMC(t *testing.T) {
	q := threeStateGenerator(t, 0.01, 1.0)
	tr := obs.NewTrace("test")
	tol := 1e-12
	pi, n, err := SORSteadyState(q, SOROptions{Tol: tol, Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("suspiciously few sweeps: %d", n)
	}
	sp := findSpan(t, tr.Finish(), "linalg.sor")
	assertIterTelemetry(t, sp.Iters, n, tol)
	if v, ok := sp.Attr("solver"); !ok || v != "sor" {
		t.Errorf("solver attr = %v", v)
	}
	if v, ok := sp.Attr("iterations"); !ok || v.(int64) != int64(n) {
		t.Errorf("iterations attr = %v, want %d", v, n)
	}
	if v, ok := sp.Attr("spectral_radius_est"); ok {
		if rho := v.(float64); !math.IsNaN(rho) && (rho < 0 || rho > 1.5) {
			t.Errorf("spectral radius estimate %g implausible", rho)
		}
	} else {
		t.Error("spectral_radius_est attr missing")
	}
	// Telemetry must not perturb the solution.
	quiet, _, err := SORSteadyState(q, SOROptions{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if pi[i] != quiet[i] { //numvet:allow float-eq identical code paths must produce identical bits
			t.Fatalf("recorded solve diverges from quiet solve at %d: %g vs %g", i, pi[i], quiet[i])
		}
	}
}

func TestPowerTelemetryThreeStateCTMC(t *testing.T) {
	q := threeStateGenerator(t, 0.01, 1.0)
	p := uniformizedDTMC(t, q)
	tr := obs.NewTrace("test")
	tol := 1e-12
	pi, n, err := PowerIterationOpts(p, PowerOptions{Tol: tol, Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	sp := findSpan(t, tr.Finish(), "linalg.power")
	assertIterTelemetry(t, sp.Iters, n, tol)
	if s := Sum(pi); math.Abs(s-1) > 1e-12 {
		t.Errorf("stationary vector sums to %g", s)
	}
	// The embedded stationary vector must match SOR on the generator.
	sor, _, err := SORSteadyState(q, SOROptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(pi[i]-sor[i]) > 1e-8 {
			t.Errorf("pi[%d] = %g (power) vs %g (sor)", i, pi[i], sor[i])
		}
	}
}

func TestPowerOptionsDefaultsMatchLegacy(t *testing.T) {
	q := threeStateGenerator(t, 0.01, 1.0)
	p := uniformizedDTMC(t, q)
	viaOpts, n1, err := PowerIterationOpts(p, PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaLegacy, n2, err := PowerIteration(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("iteration counts differ: %d vs %d", n1, n2)
	}
	for i := range viaOpts {
		if viaOpts[i] != viaLegacy[i] { //numvet:allow float-eq identical code paths must produce identical bits
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestPowerMaxIterSurfacesTypedError(t *testing.T) {
	q := threeStateGenerator(t, 0.5, 1.0)
	p := uniformizedDTMC(t, q)
	_, n, err := PowerIterationOpts(p, PowerOptions{Tol: 1e-15, MaxIter: 3})
	var nc *ErrNoConvergence
	if !errors.As(err, &nc) {
		t.Fatalf("want *ErrNoConvergence, got %v", err)
	}
	if n != 3 || nc.Iter != 3 {
		t.Errorf("iteration counts: returned %d, error %d, want 3", n, nc.Iter)
	}
}

// Benchmarks backing the zero-overhead claim: the no-op recorder path
// must cost the same as the pre-telemetry solver.
func benchSOR(b *testing.B, opts SOROptions) {
	b.Helper()
	coo := NewCOO(200, 200)
	for i := 0; i < 200; i++ {
		var exit float64
		if i > 0 {
			_ = coo.Add(i, i-1, 1.0)
			exit += 1.0
		}
		if i < 199 {
			_ = coo.Add(i, i+1, 0.5)
			exit += 0.5
		}
		_ = coo.Add(i, i, -exit)
	}
	q := coo.ToCSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SORSteadyState(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSORQuiet(b *testing.B) { benchSOR(b, SOROptions{}) }

func BenchmarkSORNopRecorder(b *testing.B) { benchSOR(b, SOROptions{Recorder: obs.Nop()}) }

func BenchmarkSORTraced(b *testing.B) {
	benchSOR(b, SOROptions{Recorder: obs.NewTrace("bench")})
}
