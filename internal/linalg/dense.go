package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFromRows builds a matrix from row slices, copying the data.
// All rows must have equal length.
func NewDenseFromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("dense from rows: row %d has %d cols, want %d: %w",
				i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set stores v at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a view of row i (not a copy).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// MulVec computes y = m·x. It returns an error on shape mismatch.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("mulvec: %d cols vs len %d: %w", m.cols, len(x), ErrDimensionMismatch)
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// VecMul computes y = xᵀ·m (row vector times matrix).
func (m *Dense) VecMul(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("vecmul: %d rows vs len %d: %w", m.rows, len(x), ErrDimensionMismatch)
	}
	y := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 { //numvet:allow float-eq skipping exact zeros is a sparsity optimization
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y, nil
}

// Mul returns the matrix product m·b.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mul: %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 { //numvet:allow float-eq skipping exact zeros is a sparsity optimization
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%12.6g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LUSolve solves a·x = b by Gaussian elimination with partial pivoting.
// a is not modified. It returns an error if a is not square, shapes
// mismatch, or a is (numerically) singular.
func LUSolve(a *Dense, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("lusolve: matrix %dx%d not square: %w", a.rows, a.cols, ErrDimensionMismatch)
	}
	if len(b) != n {
		return nil, fmt.Errorf("lusolve: rhs len %d, want %d: %w", len(b), n, ErrDimensionMismatch)
	}
	// Work on copies.
	lu := a.Clone()
	x := Clone(b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best == 0 { //numvet:allow float-eq exactly-zero pivot means structural singularity
			return nil, fmt.Errorf("lusolve: singular matrix at column %d", col)
		}
		if p != col {
			ra, rb := lu.Row(col), lu.Row(p)
			for j := range ra {
				ra[j], rb[j] = rb[j], ra[j]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / piv
			if f == 0 { //numvet:allow float-eq skipping exact zeros is a sparsity optimization
				continue
			}
			lu.Set(r, col, 0)
			rrow, prow := lu.Row(r), lu.Row(col)
			for j := col + 1; j < n; j++ {
				rrow[j] -= f * prow[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}
