package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDotAndNorms(t *testing.T) {
	tests := []struct {
		name    string
		a, b    []float64
		wantDot float64
		wantErr bool
	}{
		{name: "basic", a: []float64{1, 2, 3}, b: []float64{4, 5, 6}, wantDot: 32},
		{name: "empty", a: nil, b: nil, wantDot: 0},
		{name: "mismatch", a: []float64{1}, b: []float64{1, 2}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Dot(tt.a, tt.b)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				if !errors.Is(err, ErrDimensionMismatch) {
					t.Fatalf("want ErrDimensionMismatch, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.wantDot {
				t.Fatalf("dot = %g, want %g", got, tt.wantDot)
			}
		})
	}
	v := []float64{3, -4}
	if Norm1(v) != 7 {
		t.Errorf("Norm1 = %g, want 7", Norm1(v))
	}
	if NormInf(v) != 4 {
		t.Errorf("NormInf = %g, want 4", NormInf(v))
	}
	if Norm2(v) != 5 {
		t.Errorf("Norm2 = %g, want 5", Norm2(v))
	}
}

func TestNormalize1(t *testing.T) {
	v := []float64{2, 2, 4}
	if err := Normalize1(v); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(Sum(v), 1, 1e-15) {
		t.Fatalf("sum = %g, want 1", Sum(v))
	}
	if err := Normalize1([]float64{0, 0}); err == nil {
		t.Fatal("want error for zero vector")
	}
}

func TestDenseMulVec(t *testing.T) {
	m, err := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", y)
	}
	x, err := m.VecMul([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 4 || x[1] != 6 {
		t.Fatalf("VecMul = %v, want [4 6]", x)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestDenseMul(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewDenseFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestLUSolve(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := LUSolve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-12) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSolveSingular(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LUSolve(a, []float64{1, 2}); err == nil {
		t.Fatal("want singularity error")
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	// Property: for diagonally dominant random A and random b,
	// A·LUSolve(A,b) ≈ b.
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 2 + int(abs64(seed))%6
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				v := rng.Float64()*2 - 1
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Set(i, i, rowSum+1) // strict diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := LUSolve(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		d, _ := MaxAbsDiff(ax, b)
		return d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCOOToCSR(t *testing.T) {
	c := NewCOO(3, 3)
	mustAdd := func(i, j int, v float64) {
		t.Helper()
		if err := c.Add(i, j, v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, 2)
	mustAdd(2, 0, 5)
	mustAdd(0, 1, 3) // duplicate, summed
	mustAdd(1, 1, -7)
	m := c.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %g, want 5", m.At(0, 1))
	}
	if m.At(1, 1) != -7 {
		t.Fatalf("At(1,1) = %g, want -7", m.At(1, 1))
	}
	if m.At(2, 2) != 0 {
		t.Fatalf("At(2,2) = %g, want 0", m.At(2, 2))
	}
	if err := c.Add(5, 0, 1); err == nil {
		t.Fatal("want range error")
	}
}

func TestCSRMulAndTranspose(t *testing.T) {
	c := NewCOO(2, 3)
	_ = c.Add(0, 0, 1)
	_ = c.Add(0, 2, 2)
	_ = c.Add(1, 1, 3)
	m := c.ToCSR()
	y, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 3 {
		t.Fatalf("MulVec = %v", y)
	}
	x, err := m.VecMul([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 6 || x[2] != 2 {
		t.Fatalf("VecMul = %v", x)
	}
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 0) != 2 || tr.At(1, 1) != 3 {
		t.Fatal("transpose values wrong")
	}
}

func TestCSRTransposeProperty(t *testing.T) {
	// Property: (Mᵀ)ᵀ = M for random sparse matrices.
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		rows := 1 + int(abs64(seed))%8
		cols := 1 + int(abs64(seed)>>3)%8
		c := NewCOO(rows, cols)
		for k := 0; k < rows*cols/2+1; k++ {
			_ = c.Add(rng.Intn(rows), rng.Intn(cols), rng.Float64())
		}
		m := c.ToCSR()
		tt := m.Transpose().Transpose()
		if tt.Rows() != m.Rows() || tt.Cols() != m.Cols() || tt.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.At(i, j) != tt.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// twoStateGenerator returns the generator of the classic up/down CTMC with
// failure rate lam and repair rate mu. Its stationary vector is
// (mu, lam)/(lam+mu).
func twoStateGenerator(lam, mu float64) *Dense {
	m, _ := NewDenseFromRows([][]float64{
		{-lam, lam},
		{mu, -mu},
	})
	return m
}

func TestGTHTwoState(t *testing.T) {
	tests := []struct {
		name    string
		lam, mu float64
	}{
		{name: "balanced", lam: 1, mu: 1},
		{name: "stiff", lam: 1e-6, mu: 1},
		{name: "very stiff", lam: 1e-9, mu: 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pi, err := GTH(twoStateGenerator(tt.lam, tt.mu))
			if err != nil {
				t.Fatal(err)
			}
			wantUp := tt.mu / (tt.lam + tt.mu)
			if !almostEqual(pi[0], wantUp, 1e-14) {
				t.Fatalf("pi[0] = %.16g, want %.16g", pi[0], wantUp)
			}
		})
	}
}

func TestGTHBirthDeath(t *testing.T) {
	// M/M/1/3 queue: arrival 2, service 3. pi_k ∝ (2/3)^k.
	lam, mu := 2.0, 3.0
	q := NewDense(4, 4)
	for k := 0; k < 3; k++ {
		q.Set(k, k+1, lam)
		q.Set(k+1, k, mu)
	}
	pi, err := GTH(q)
	if err != nil {
		t.Fatal(err)
	}
	rho := lam / mu
	var norm float64
	for k := 0; k < 4; k++ {
		norm += math.Pow(rho, float64(k))
	}
	for k := 0; k < 4; k++ {
		want := math.Pow(rho, float64(k)) / norm
		if !almostEqual(pi[k], want, 1e-13) {
			t.Fatalf("pi[%d] = %g, want %g", k, pi[k], want)
		}
	}
}

func TestGTHErrors(t *testing.T) {
	if _, err := GTH(NewDense(0, 0)); err == nil {
		t.Fatal("want error for empty generator")
	}
	bad := NewDense(2, 2)
	bad.Set(0, 1, -1)
	if _, err := GTH(bad); err == nil {
		t.Fatal("want error for negative rate")
	}
	// Reducible: state 1 unreachable downward.
	red := NewDense(2, 2)
	red.Set(0, 1, 1)
	if _, err := GTH(red); err == nil {
		t.Fatal("want error for reducible generator")
	}
}

func TestSORMatchesGTH(t *testing.T) {
	// Random irreducible 6-state generator.
	rng := newTestRand(42)
	n := 6
	coo := NewCOO(n, n)
	dense := NewDense(n, n)
	for i := 0; i < n; i++ {
		var out float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := 0.1 + rng.Float64()*5
			_ = coo.Add(i, j, v)
			dense.Set(i, j, v)
			out += v
		}
		_ = coo.Add(i, i, -out)
		dense.Set(i, i, -out)
	}
	want, err := GTH(dense)
	if err != nil {
		t.Fatal(err)
	}
	got, iters, err := SORSteadyState(coo.ToCSR(), SOROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Fatal("no iterations recorded")
	}
	d, _ := MaxAbsDiff(got, want)
	if d > 1e-9 {
		t.Fatalf("SOR vs GTH diff %g", d)
	}
}

func TestSORStiffTwoState(t *testing.T) {
	lam, mu := 1e-5, 1.0
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 1, lam)
	_ = coo.Add(0, 0, -lam)
	_ = coo.Add(1, 0, mu)
	_ = coo.Add(1, 1, -mu)
	pi, _, err := SORSteadyState(coo.ToCSR(), SOROptions{Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lam + mu)
	if !almostEqual(pi[0], want, 1e-10) {
		t.Fatalf("pi[0] = %.14g, want %.14g", pi[0], want)
	}
}

func TestSORBadOmega(t *testing.T) {
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 1, 1)
	_ = coo.Add(1, 0, 1)
	if _, _, err := SORSteadyState(coo.ToCSR(), SOROptions{Omega: 2.5}); err == nil {
		t.Fatal("want omega range error")
	}
}

func TestPowerIteration(t *testing.T) {
	// Two-state DTMC with P = [[0.9,0.1],[0.5,0.5]]; stationary = (5/6, 1/6).
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 0, 0.9)
	_ = coo.Add(0, 1, 0.1)
	_ = coo.Add(1, 0, 0.5)
	_ = coo.Add(1, 1, 0.5)
	pi, _, err := PowerIteration(coo.ToCSR(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pi[0], 5.0/6, 1e-10) || !almostEqual(pi[1], 1.0/6, 1e-10) {
		t.Fatalf("pi = %v, want [5/6 1/6]", pi)
	}
}

func TestSimpson(t *testing.T) {
	got := Simpson(func(x float64) float64 { return x * x }, 0, 1, 100)
	if !almostEqual(got, 1.0/3, 1e-9) {
		t.Fatalf("∫x² = %g, want 1/3", got)
	}
}

func TestAdaptiveSimpson(t *testing.T) {
	got := AdaptiveSimpson(math.Sin, 0, math.Pi, 1e-10)
	if !almostEqual(got, 2, 1e-8) {
		t.Fatalf("∫sin = %g, want 2", got)
	}
}

func TestIntegrateToInf(t *testing.T) {
	// ∫₀^∞ e^{-t} dt = 1.
	got := IntegrateToInf(func(t float64) float64 { return math.Exp(-t) }, 1e-10)
	if !almostEqual(got, 1, 1e-7) {
		t.Fatalf("∫e^-t = %g, want 1", got)
	}
	// MTTF of 2-of-3 exponential system with rate 1: 5/6.
	r23 := func(t float64) float64 {
		r := math.Exp(-t)
		return 3*r*r - 2*r*r*r
	}
	got = IntegrateToInf(r23, 1e-10)
	if !almostEqual(got, 5.0/6, 1e-6) {
		t.Fatalf("MTTF 2oo3 = %g, want 5/6", got)
	}
}

func TestBrent(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-10) {
		t.Fatalf("root = %g, want √2", root)
	}
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, 0, 1, 1e-12); err == nil {
		t.Fatal("want bracketing error")
	}
}

// --- minimal deterministic PRNG for tests (avoids math/rand global state) ---

type testRand struct{ s uint64 }

func newTestRand(seed int64) *testRand {
	u := uint64(seed)
	if u == 0 {
		u = 0x9e3779b97f4a7c15
	}
	return &testRand{s: u}
}

func (r *testRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *testRand) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func (r *testRand) Intn(n int) int {
	return int(r.next() % uint64(n))
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == math.MinInt64 {
			return math.MaxInt64
		}
		return -x
	}
	return x
}

func TestExpmEdgeCases(t *testing.T) {
	// e^0 = I.
	z := NewDense(3, 3)
	e, err := Expm(z)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(e.At(i, j), want, 1e-15) {
				t.Fatalf("e^0[%d][%d] = %g", i, j, e.At(i, j))
			}
		}
	}
	// Nilpotent N = [[0,1],[0,0]]: e^N = I + N exactly.
	n := NewDense(2, 2)
	n.Set(0, 1, 1)
	en, err := Expm(n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(en.At(0, 0), 1, 1e-14) || !almostEqual(en.At(0, 1), 1, 1e-14) ||
		!almostEqual(en.At(1, 0), 0, 1e-14) || !almostEqual(en.At(1, 1), 1, 1e-14) {
		t.Errorf("e^N = %v", en)
	}
	// Diagonal: e^{diag(a,b)} = diag(e^a, e^b).
	d := NewDense(2, 2)
	d.Set(0, 0, -1)
	d.Set(1, 1, 2)
	ed, err := Expm(d)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ed.At(0, 0), math.Exp(-1), 1e-12) || !almostEqual(ed.At(1, 1), math.Exp(2), 1e-12) {
		t.Errorf("e^diag = %v", ed)
	}
	// Non-square rejected.
	if _, err := Expm(NewDense(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}
