// Package linalg provides the numerical substrate for the analytic solvers
// in this repository: dense and compressed-sparse-row matrices, direct and
// iterative linear solvers, the Grassmann–Taksar–Heyman (GTH) algorithm for
// Markov-chain steady state, numerical quadrature, and scalar root finding.
//
// The package is deliberately small and self-contained (stdlib only). It is
// not a general-purpose linear-algebra library; it implements exactly the
// primitives the reliability solvers need, with the numerical properties
// those solvers require (e.g., GTH performs no subtractions, so it is
// backward stable for stochastic matrices regardless of stiffness).
package linalg
