package linalg

import (
	"fmt"
	"sort"
)

// Triplet is a single (row, col, value) entry used to assemble a sparse
// matrix incrementally.
type Triplet struct {
	Row, Col int
	Val      float64
}

// COO accumulates triplets and converts them to CSR form. Duplicate
// (row, col) entries are summed, matching the usual assembly semantics for
// infinitesimal generators.
type COO struct {
	rows, cols int
	entries    []Triplet
}

// NewCOO returns an empty rows×cols accumulator.
func NewCOO(rows, cols int) *COO {
	return &COO{rows: rows, cols: cols}
}

// Add records v at (i, j). Out-of-range indices return an error.
func (c *COO) Add(i, j int, v float64) error {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		return fmt.Errorf("coo add: (%d,%d) outside %dx%d: %w", i, j, c.rows, c.cols, ErrDimensionMismatch)
	}
	if v == 0 { //numvet:allow float-eq exact zeros are structurally absent from a sparse matrix
		return nil
	}
	c.entries = append(c.entries, Triplet{Row: i, Col: j, Val: v})
	return nil
}

// ToCSR sorts and compresses the accumulated entries.
func (c *COO) ToCSR() *CSR {
	sort.Slice(c.entries, func(a, b int) bool {
		ea, eb := c.entries[a], c.entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
	m := &CSR{
		rows:   c.rows,
		cols:   c.cols,
		rowPtr: make([]int, c.rows+1),
	}
	for k := 0; k < len(c.entries); {
		e := c.entries[k]
		v := e.Val
		k++
		for k < len(c.entries) && c.entries[k].Row == e.Row && c.entries[k].Col == e.Col {
			v += c.entries[k].Val
			k++
		}
		if v != 0 { //numvet:allow float-eq exact zeros are structurally absent from a sparse matrix
			m.colIdx = append(m.colIdx, e.Col)
			m.vals = append(m.vals, v)
			m.rowPtr[e.Row+1]++
		}
	}
	for i := 0; i < c.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the element at (i, j) (zero if not stored). O(row nnz).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	for k := lo; k < hi; k++ {
		if m.colIdx[k] == j {
			return m.vals[k]
		}
	}
	return 0
}

// RowRange calls fn(col, val) for every stored entry of row i.
func (m *CSR) RowRange(i int, fn func(col int, val float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// MulVec computes y = m·x.
func (m *CSR) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("csr mulvec: %d cols vs len %d: %w", m.cols, len(x), ErrDimensionMismatch)
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y, nil
}

// VecMul computes y = xᵀ·m.
func (m *CSR) VecMul(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("csr vecmul: %d rows vs len %d: %w", m.rows, len(x), ErrDimensionMismatch)
	}
	y := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 { //numvet:allow float-eq skipping exact zeros is a sparsity optimization
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			y[m.colIdx[k]] += xi * m.vals[k]
		}
	}
	return y, nil
}

// ToDense expands the matrix; intended for tests and small systems.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// Transpose returns mᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for i := 0; i < t.rows; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int, t.rows)
	copy(next, t.rowPtr[:t.rows])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := m.colIdx[k]
			pos := next[c]
			t.colIdx[pos] = i
			t.vals[pos] = m.vals[k]
			next[c]++
		}
	}
	return t
}
