package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
)

func slaSimulator(t *testing.T, lam, mu float64) *SystemSimulator {
	t.Helper()
	s, err := NewSystemSimulator([]ComponentProcess{{
		Name:     "svc",
		Lifetime: dist.MustExponential(lam),
		Repair:   dist.MustExponential(mu),
	}}, func(up []bool) bool { return up[0] })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSampleIntervalAvailabilityMean(t *testing.T) {
	lam, mu := 0.2, 2.0
	s := slaSimulator(t, lam, mu)
	rng := rand.New(rand.NewSource(61))
	window := 100.0
	sample, err := s.SampleIntervalAvailability(rng, window, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Mean window availability ≈ interval availability; for a long window
	// it approaches steady state μ/(λ+μ) ≈ 0.909.
	want := mu / (lam + mu)
	if math.Abs(sample.Mean-want) > 0.01 {
		t.Errorf("mean = %g, want ≈ %g", sample.Mean, want)
	}
	// Quantiles ordered.
	q10, err := sample.Quantile(0.1)
	if err != nil {
		t.Fatal(err)
	}
	q90, err := sample.Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !(q10 <= sample.Mean && sample.Mean <= q90) {
		t.Errorf("quantiles disordered: %g / %g / %g", q10, sample.Mean, q90)
	}
}

func TestBreachProbabilityMonotone(t *testing.T) {
	s := slaSimulator(t, 0.2, 2.0)
	rng := rand.New(rand.NewSource(67))
	sample, err := s.SampleIntervalAvailability(rng, 50, 3000)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, sla := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		b := sample.BreachProbability(sla)
		if b < prev {
			t.Errorf("breach probability not monotone at %g: %g < %g", sla, b, prev)
		}
		prev = b
		if b < 0 || b > 1 {
			t.Errorf("breach probability %g outside [0,1]", b)
		}
	}
	// A 50h window at A≈0.909 breaches a 99% SLA most of the time and a
	// 50% SLA almost never.
	if sample.BreachProbability(0.99) < 0.5 {
		t.Errorf("P(breach 99%%) = %g, want high", sample.BreachProbability(0.99))
	}
	if sample.BreachProbability(0.5) > 0.02 {
		t.Errorf("P(breach 50%%) = %g, want ~0", sample.BreachProbability(0.5))
	}
}

func TestWindowLengthNarrowsDistribution(t *testing.T) {
	// Longer windows average out failures: the availability distribution
	// concentrates (smaller interquantile range).
	s := slaSimulator(t, 0.5, 5.0)
	rng := rand.New(rand.NewSource(71))
	spread := func(window float64) float64 {
		t.Helper()
		sample, err := s.SampleIntervalAvailability(rng, window, 2500)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := sample.Quantile(0.1)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := sample.Quantile(0.9)
		if err != nil {
			t.Fatal(err)
		}
		return hi - lo
	}
	short := spread(5)
	long := spread(200)
	if long >= short {
		t.Errorf("long-window spread %g should be below short-window %g", long, short)
	}
}

func TestSampleIntervalAvailabilityValidation(t *testing.T) {
	s := slaSimulator(t, 1, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := s.SampleIntervalAvailability(rng, 10, 1); err == nil {
		t.Error("reps=1 accepted")
	}
	if _, err := s.SampleIntervalAvailability(rng, 0, 10); err == nil {
		t.Error("window=0 accepted")
	}
	sample, err := s.SampleIntervalAvailability(rng, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sample.Quantile(0); err == nil {
		t.Error("q=0 accepted")
	}
}
