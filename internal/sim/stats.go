package sim

import (
	"fmt"
	"math"
)

// Accumulator keeps running mean and variance with Welford's algorithm.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	return math.Sqrt(a.Variance() / float64(a.n))
}

// CI holds a two-sided confidence interval.
type CI struct {
	Mean       float64
	Lo, Hi     float64
	HalfWidth  float64
	Confidence float64
	N          int
}

// Contains reports whether v lies in the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// String implements fmt.Stringer.
func (c CI) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%, n=%d)", c.Mean, c.HalfWidth, c.Confidence*100, c.N)
}

// Interval returns the normal-approximation confidence interval at the
// given level (e.g. 0.95). With fewer than 2 observations the interval is
// infinite.
func (a *Accumulator) Interval(level float64) CI {
	z := zQuantile(level)
	hw := z * a.StdErr()
	return CI{
		Mean:       a.mean,
		Lo:         a.mean - hw,
		Hi:         a.mean + hw,
		HalfWidth:  hw,
		Confidence: level,
		N:          a.n,
	}
}

// zQuantile returns the standard normal quantile for a two-sided interval
// at the given confidence level, covering the levels used in practice.
func zQuantile(level float64) float64 {
	switch {
	case level >= 0.999:
		return 3.2905
	case level >= 0.99:
		return 2.5758
	case level >= 0.95:
		return 1.9600
	case level >= 0.90:
		return 1.6449
	default:
		return 1.2816 // 0.80
	}
}
