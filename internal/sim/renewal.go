package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
)

// ComponentProcess describes one independently failing and repairing
// component as an alternating renewal process.
type ComponentProcess struct {
	// Name identifies the component.
	Name string
	// Lifetime is the up-period distribution (required).
	Lifetime dist.Distribution
	// Repair is the down-period distribution; nil means no repair (the
	// component stays down after its first failure).
	Repair dist.Distribution
}

// SystemSimulator estimates system-level availability/reliability measures
// by simulating the component processes on the event engine and evaluating
// a user-supplied structure function over the component up/down vector.
type SystemSimulator struct {
	comps []ComponentProcess
	// structure returns true (system up) given component up-flags in the
	// order the components were supplied.
	structure func(up []bool) bool
}

// NewSystemSimulator validates inputs and returns a simulator.
func NewSystemSimulator(comps []ComponentProcess, structure func(up []bool) bool) (*SystemSimulator, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("sim: no components")
	}
	if structure == nil {
		return nil, fmt.Errorf("sim: nil structure function")
	}
	for i, c := range comps {
		if c.Lifetime == nil {
			return nil, fmt.Errorf("sim: component %d (%s) has no lifetime", i, c.Name)
		}
	}
	out := &SystemSimulator{comps: append([]ComponentProcess(nil), comps...), structure: structure}
	return out, nil
}

// simulateOnce runs one replication over [0, horizon] and returns the system
// uptime within the horizon and whether the system was up at the horizon.
func (s *SystemSimulator) simulateOnce(rng *rand.Rand, horizon float64) (uptime float64, upAtEnd bool, firstFailure float64) {
	eng := NewEngine()
	up := make([]bool, len(s.comps))
	for i := range up {
		up[i] = true
	}
	sysUp := s.structure(up)
	lastChange := 0.0
	firstFailure = horizon
	seenFailure := false

	var schedule func(i int)
	schedule = func(i int) {
		c := s.comps[i]
		life := c.Lifetime.Rand(rng)
		_ = eng.Schedule(life, func() {
			up[i] = false
			s.onChange(eng, up, &sysUp, &lastChange, &uptime, &firstFailure, &seenFailure)
			if c.Repair != nil {
				rep := c.Repair.Rand(rng)
				_ = eng.Schedule(rep, func() {
					up[i] = true
					s.onChange(eng, up, &sysUp, &lastChange, &uptime, &firstFailure, &seenFailure)
					schedule(i)
				})
			}
		})
	}
	for i := range s.comps {
		schedule(i)
	}
	eng.Run(horizon)
	if sysUp {
		uptime += horizon - lastChange
	}
	return uptime, sysUp, firstFailure
}

func (s *SystemSimulator) onChange(eng *Engine, up []bool, sysUp *bool, lastChange, uptime, firstFailure *float64, seenFailure *bool) {
	now := eng.Now()
	newUp := s.structure(up)
	if newUp == *sysUp {
		return
	}
	if *sysUp {
		*uptime += now - *lastChange
		if !*seenFailure {
			*firstFailure = now
			*seenFailure = true
		}
	}
	*sysUp = newUp
	*lastChange = now
}

// EstimateIntervalAvailability returns a CI on the expected fraction of
// [0, horizon] the system is up.
func (s *SystemSimulator) EstimateIntervalAvailability(rng *rand.Rand, horizon float64, reps int, level float64) (CI, error) {
	if reps < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	var acc Accumulator
	for r := 0; r < reps; r++ {
		uptime, _, _ := s.simulateOnce(rng, horizon)
		acc.Add(uptime / horizon)
	}
	return acc.Interval(level), nil
}

// EstimatePointAvailability returns a CI on P(system up at time t).
func (s *SystemSimulator) EstimatePointAvailability(rng *rand.Rand, t float64, reps int, level float64) (CI, error) {
	if reps < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	var acc Accumulator
	for r := 0; r < reps; r++ {
		_, upAtEnd, _ := s.simulateOnce(rng, t)
		if upAtEnd {
			acc.Add(1)
		} else {
			acc.Add(0)
		}
	}
	return acc.Interval(level), nil
}

// EstimateReliability returns a CI on P(no system failure during [0, t])
// (meaningful for non-repairable systems or as mission reliability for
// repairable ones).
func (s *SystemSimulator) EstimateReliability(rng *rand.Rand, t float64, reps int, level float64) (CI, error) {
	if reps < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	var acc Accumulator
	for r := 0; r < reps; r++ {
		_, _, firstFailure := s.simulateOnce(rng, t)
		if firstFailure >= t {
			acc.Add(1)
		} else {
			acc.Add(0)
		}
	}
	return acc.Interval(level), nil
}

// EstimateMTTF returns a CI on the mean time to first system failure,
// simulating up to horizon per replication (horizon must comfortably exceed
// the true MTTF for an unbiased estimate).
func (s *SystemSimulator) EstimateMTTF(rng *rand.Rand, horizon float64, reps int, level float64) (CI, error) {
	if reps < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	var acc Accumulator
	for r := 0; r < reps; r++ {
		_, _, firstFailure := s.simulateOnce(rng, horizon)
		acc.Add(firstFailure)
	}
	return acc.Interval(level), nil
}
