package sim

import (
	"fmt"
	"math/rand"
)

// Steady-state estimation by the method of batch means: one long CTMC
// path, a deleted warm-up prefix, and the remaining horizon split into
// batches whose means are treated as (approximately) independent
// observations. This gives the simulator a steady-state oracle to set
// against GTH/SOR, complementing the replication-based transient oracles.

// BatchMeansOptions tunes EstimateSteadyStateOccupancy.
type BatchMeansOptions struct {
	// Warmup is the simulated time discarded before measuring.
	Warmup float64
	// Batches is the number of batches (≥ 2; default 20).
	Batches int
	// BatchLength is the simulated time per batch.
	BatchLength float64
	// Level is the confidence level (default 0.95).
	Level float64
}

// EstimateSteadyStateOccupancy estimates the long-run fraction of time the
// chain spends in the given states from one long path.
func (s *CTMCPathSimulator) EstimateSteadyStateOccupancy(rng *rand.Rand, initial string, states []string, opts BatchMeansOptions) (CI, error) {
	from, err := s.chain.Index(initial)
	if err != nil {
		return CI{}, err
	}
	target := make(map[int]bool, len(states))
	for _, name := range states {
		i, err := s.chain.Index(name)
		if err != nil {
			return CI{}, err
		}
		target[i] = true
	}
	if opts.Batches == 0 {
		opts.Batches = 20
	}
	if opts.Batches < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 batches, got %d", opts.Batches)
	}
	if opts.BatchLength <= 0 {
		return CI{}, fmt.Errorf("sim: batch length %g must be positive", opts.BatchLength)
	}
	if opts.Warmup < 0 {
		return CI{}, fmt.Errorf("sim: warmup %g negative", opts.Warmup)
	}
	if opts.Level == 0 { //numvet:allow float-eq zero means unset; option-default sentinel
		opts.Level = 0.95
	}

	state := from
	now := 0.0
	horizon := opts.Warmup + float64(opts.Batches)*opts.BatchLength
	var acc Accumulator
	batchEnd := opts.Warmup + opts.BatchLength
	var inTarget float64

	flushThrough := func(until float64, dwellEnd float64) {
		// Credit target time between now and min(dwellEnd, until); advance
		// batches as boundaries are crossed.
		for now < dwellEnd {
			segEnd := dwellEnd
			if segEnd > batchEnd {
				segEnd = batchEnd
			}
			if target[state] && segEnd > now && now >= opts.Warmup {
				inTarget += segEnd - now
			} else if target[state] && segEnd > opts.Warmup && now < opts.Warmup {
				inTarget += segEnd - opts.Warmup
			}
			now = segEnd
			if now >= batchEnd && batchEnd <= until {
				acc.Add(inTarget / opts.BatchLength)
				inTarget = 0
				batchEnd += opts.BatchLength
			}
			if now >= until {
				return
			}
		}
	}

	for now < horizon {
		total := s.totals[state]
		var dwell float64
		if total == 0 { //numvet:allow float-eq exactly-zero total rate marks an absorbing state
			dwell = horizon - now
		} else {
			dwell = rng.ExpFloat64() / total
		}
		dwellEnd := now + dwell
		if dwellEnd > horizon {
			dwellEnd = horizon
		}
		flushThrough(horizon, dwellEnd)
		if now >= horizon || total == 0 { //numvet:allow float-eq exactly-zero total rate marks an absorbing state
			break
		}
		u := rng.Float64() * total
		for _, o := range s.outs[state] {
			if u < o.rate {
				state = o.to
				break
			}
			u -= o.rate
		}
	}
	if acc.N() < 2 {
		return CI{}, fmt.Errorf("sim: only %d complete batches collected", acc.N())
	}
	return acc.Interval(opts.Level), nil
}
