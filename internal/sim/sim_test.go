package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/markov"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	mustSchedule := func(d float64, id int) {
		t.Helper()
		if err := e.Schedule(d, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	mustSchedule(3, 3)
	mustSchedule(1, 1)
	mustSchedule(2, 2)
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %g, want 10", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		_ = e.Schedule(1.0, func() { order = append(order, i) })
	}
	e.Run(2)
	for i, got := range order {
		if got != i {
			t.Fatalf("FIFO tie-break violated: %v", order)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := false
	_ = e.Schedule(5, func() { fired = true })
	e.Run(3)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Now() != 3 {
		t.Errorf("clock = %g, want 3", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run(6)
	if !fired {
		t.Error("event not fired after extending horizon")
	}
}

func TestEngineCascade(t *testing.T) {
	// Events scheduling events: a chain of 100 unit steps.
	e := NewEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			_ = e.Schedule(1, step)
		}
	}
	_ = e.Schedule(1, step)
	e.Run(1000)
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if e.Now() != 1000 {
		t.Errorf("clock = %g", e.Now())
	}
}

func TestEngineRejectsPast(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestEngineHeapProperty(t *testing.T) {
	// Property: events fire in nondecreasing time order regardless of
	// insertion order.
	f := func(delays []float64) bool {
		e := NewEngine()
		var times []float64
		for _, d := range delays {
			d = math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			d = math.Mod(d, 1000)
			if err := e.Schedule(d, func() { times = append(times, e.Now()) }); err != nil {
				return false
			}
		}
		e.Run(math.Inf(1))
		return sort.Float64sAreSorted(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("n = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", a.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %g, want %g", a.Variance(), 32.0/7)
	}
	ci := a.Interval(0.95)
	if !ci.Contains(5) {
		t.Errorf("CI %v should contain the mean", ci)
	}
}

func TestCTMCSimMatchesAnalyticTransient(t *testing.T) {
	lam, mu := 0.5, 2.0
	c := markov.NewCTMC()
	if err := c.AddRate("up", "down", lam); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate("down", "up", mu); err != nil {
		t.Fatal(err)
	}
	s, err := NewCTMCPathSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	tt := 0.8
	ci, err := s.EstimateTransientProb(rng, "up", tt, []string{"up"}, 40000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	sr := lam + mu
	want := mu/sr + lam/sr*math.Exp(-sr*tt)
	if !ci.Contains(want) {
		t.Errorf("analytic %g outside simulated CI %v", want, ci)
	}
}

func TestCTMCSimOccupancy(t *testing.T) {
	lam, mu := 0.5, 2.0
	c := markov.NewCTMC()
	_ = c.AddRate("up", "down", lam)
	_ = c.AddRate("down", "up", mu)
	s, err := NewCTMCPathSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	horizon := 10.0
	ci, err := s.EstimateOccupancy(rng, "up", horizon, []string{"up"}, 20000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := c.InitialAt("up")
	want, err := c.IntervalAvailability(horizon, p0, []string{"up"}, markov.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(want) {
		t.Errorf("analytic %g outside simulated CI %v", want, ci)
	}
}

func TestCTMCSimMTTA(t *testing.T) {
	// Two-component no-repair parallel: MTTA = 3/(2λ).
	lam := 1.0
	c := markov.NewCTMC()
	_ = c.AddRate("2", "1", 2*lam)
	_ = c.AddRate("1", "0", lam)
	s, err := NewCTMCPathSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	ci, err := s.EstimateMTTA(rng, "2", []string{"0"}, 1000, 30000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(1.5) {
		t.Errorf("MTTA 1.5 outside CI %v", ci)
	}
}

func TestSystemSimulatorSingleComponentAvailability(t *testing.T) {
	lam, mu := 1.0, 4.0
	comps := []ComponentProcess{{
		Name:     "c",
		Lifetime: dist.MustExponential(lam),
		Repair:   dist.MustExponential(mu),
	}}
	s, err := NewSystemSimulator(comps, func(up []bool) bool { return up[0] })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	tt := 1.3
	ci, err := s.EstimatePointAvailability(rng, tt, 40000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	sr := lam + mu
	want := mu/sr + lam/sr*math.Exp(-sr*tt)
	if !ci.Contains(want) {
		t.Errorf("analytic A(%g)=%g outside CI %v", tt, want, ci)
	}
}

func TestSystemSimulatorParallelReliability(t *testing.T) {
	// Two-unit parallel, no repair: R(t) = 2e^{-λt} - e^{-2λt}.
	lam := 1.0
	comps := []ComponentProcess{
		{Name: "a", Lifetime: dist.MustExponential(lam)},
		{Name: "b", Lifetime: dist.MustExponential(lam)},
	}
	s, err := NewSystemSimulator(comps, func(up []bool) bool { return up[0] || up[1] })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	tt := 1.0
	ci, err := s.EstimateReliability(rng, tt, 40000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*math.Exp(-lam*tt) - math.Exp(-2*lam*tt)
	if !ci.Contains(want) {
		t.Errorf("analytic R=%g outside CI %v", want, ci)
	}
	mttf, err := s.EstimateMTTF(rng, 200, 20000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !mttf.Contains(1.5) {
		t.Errorf("MTTF 1.5 outside CI %v", mttf)
	}
}

func TestSystemSimulatorWeibull(t *testing.T) {
	// Non-exponential oracle check: single Weibull component reliability.
	w, err := dist.NewWeibull(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemSimulator(
		[]ComponentProcess{{Name: "w", Lifetime: w}},
		func(up []bool) bool { return up[0] },
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	tt := 0.8
	ci, err := s.EstimateReliability(rng, tt, 40000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-math.Pow(tt, 2))
	if !ci.Contains(want) {
		t.Errorf("analytic R=%g outside CI %v", want, ci)
	}
}

func TestSystemSimulatorValidation(t *testing.T) {
	if _, err := NewSystemSimulator(nil, func([]bool) bool { return true }); err == nil {
		t.Error("empty components accepted")
	}
	comps := []ComponentProcess{{Name: "x", Lifetime: dist.MustExponential(1)}}
	if _, err := NewSystemSimulator(comps, nil); err == nil {
		t.Error("nil structure accepted")
	}
	if _, err := NewSystemSimulator([]ComponentProcess{{Name: "y"}}, func([]bool) bool { return true }); err == nil {
		t.Error("missing lifetime accepted")
	}
}
