package sim

import (
	"math/rand"
	"testing"

	"repro/internal/markov"
)

func TestBatchMeansMatchesGTH(t *testing.T) {
	lam, mu := 0.4, 2.0
	c := markov.NewCTMC()
	if err := c.AddRate("up", "down", lam); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate("down", "up", mu); err != nil {
		t.Fatal(err)
	}
	s, err := NewCTMCPathSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	ci, err := s.EstimateSteadyStateOccupancy(rng, "up", []string{"up"}, BatchMeansOptions{
		Warmup:      50,
		Batches:     30,
		BatchLength: 200,
		Level:       0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lam + mu)
	if !ci.Contains(want) {
		t.Errorf("analytic %g outside batch-means CI %v", want, ci)
	}
	if ci.HalfWidth > 0.02 {
		t.Errorf("CI too wide: %v", ci)
	}
}

func TestBatchMeansSharedRepairDuplex(t *testing.T) {
	lam, mu := 0.3, 1.5
	c := markov.NewCTMC()
	for _, err := range []error{
		c.AddRate("2", "1", 2*lam),
		c.AddRate("1", "0", lam),
		c.AddRate("1", "2", mu),
		c.AddRate("0", "1", mu),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	pi, err := c.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	want := pi["2"] + pi["1"]
	s, err := NewCTMCPathSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	ci, err := s.EstimateSteadyStateOccupancy(rng, "2", []string{"2", "1"}, BatchMeansOptions{
		Warmup:      100,
		Batches:     25,
		BatchLength: 400,
		Level:       0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(want) {
		t.Errorf("analytic %g outside CI %v", want, ci)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	c := markov.NewCTMC()
	_ = c.AddRate("a", "b", 1)
	_ = c.AddRate("b", "a", 1)
	s, err := NewCTMCPathSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cases := []BatchMeansOptions{
		{Batches: 1, BatchLength: 10},
		{Batches: 5, BatchLength: 0},
		{Batches: 5, BatchLength: 10, Warmup: -1},
	}
	for i, opts := range cases {
		if _, err := s.EstimateSteadyStateOccupancy(rng, "a", []string{"a"}, opts); err == nil {
			t.Errorf("case %d accepted: %+v", i, opts)
		}
	}
	if _, err := s.EstimateSteadyStateOccupancy(rng, "ghost", []string{"a"},
		BatchMeansOptions{Batches: 5, BatchLength: 10}); err == nil {
		t.Error("unknown initial accepted")
	}
}
