package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/markov"
)

// CTMCPathSimulator draws sample paths of a CTMC and estimates transient
// and occupancy measures by replication, serving as the oracle for the
// uniformization solver.
type CTMCPathSimulator struct {
	chain  *markov.CTMC
	outs   [][]outgoing // adjacency: per-state outgoing transitions
	totals []float64    // per-state total exit rate
	names  []string
}

type outgoing struct {
	to   int
	rate float64
}

// NewCTMCPathSimulator prepares a simulator for the given chain.
func NewCTMCPathSimulator(c *markov.CTMC) (*CTMCPathSimulator, error) {
	q, err := c.Generator()
	if err != nil {
		return nil, err
	}
	n := q.Rows()
	s := &CTMCPathSimulator{
		chain:  c,
		outs:   make([][]outgoing, n),
		totals: make([]float64, n),
		names:  c.StateNames(),
	}
	for i := 0; i < n; i++ {
		q.RowRange(i, func(col int, val float64) {
			if col == i {
				return
			}
			s.outs[i] = append(s.outs[i], outgoing{to: col, rate: val})
			s.totals[i] += val
		})
	}
	return s, nil
}

// stateAt simulates one path from state `from` and returns the state index
// occupied at time t.
func (s *CTMCPathSimulator) stateAt(rng *rand.Rand, from int, t float64) int {
	now := 0.0
	state := from
	for { //numvet:allow unbounded-loop sojourn times are a.s. positive, so `now` passes any finite t
		total := s.totals[state]
		if total == 0 { //numvet:allow float-eq exactly-zero total rate marks an absorbing state
			return state // absorbing
		}
		now += rng.ExpFloat64() / total
		if now > t {
			return state
		}
		u := rng.Float64() * total
		for _, o := range s.outs[state] {
			if u < o.rate {
				state = o.to
				break
			}
			u -= o.rate
		}
	}
}

// EstimateTransientProb estimates P(X(t) ∈ states | X(0)=initial) from
// reps independent paths, returning a confidence interval.
func (s *CTMCPathSimulator) EstimateTransientProb(rng *rand.Rand, initial string, t float64, states []string, reps int, level float64) (CI, error) {
	from, err := s.chain.Index(initial)
	if err != nil {
		return CI{}, err
	}
	target := make(map[int]bool, len(states))
	for _, name := range states {
		i, err := s.chain.Index(name)
		if err != nil {
			return CI{}, err
		}
		target[i] = true
	}
	if reps < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	var acc Accumulator
	for r := 0; r < reps; r++ {
		if target[s.stateAt(rng, from, t)] {
			acc.Add(1)
		} else {
			acc.Add(0)
		}
	}
	return acc.Interval(level), nil
}

// EstimateOccupancy estimates the expected fraction of [0, horizon] spent
// in the given states (interval availability) from reps paths.
func (s *CTMCPathSimulator) EstimateOccupancy(rng *rand.Rand, initial string, horizon float64, states []string, reps int, level float64) (CI, error) {
	from, err := s.chain.Index(initial)
	if err != nil {
		return CI{}, err
	}
	target := make(map[int]bool, len(states))
	for _, name := range states {
		i, err := s.chain.Index(name)
		if err != nil {
			return CI{}, err
		}
		target[i] = true
	}
	if reps < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	var acc Accumulator
	for r := 0; r < reps; r++ {
		now := 0.0
		state := from
		inTarget := 0.0
		for now < horizon {
			total := s.totals[state]
			var dwell float64
			if total == 0 { //numvet:allow float-eq exactly-zero total rate marks an absorbing state
				dwell = horizon - now
			} else {
				dwell = rng.ExpFloat64() / total
				if now+dwell > horizon {
					dwell = horizon - now
				}
			}
			if target[state] {
				inTarget += dwell
			}
			now += dwell
			if now >= horizon || total == 0 { //numvet:allow float-eq exactly-zero total rate marks an absorbing state
				break
			}
			u := rng.Float64() * total
			for _, o := range s.outs[state] {
				if u < o.rate {
					state = o.to
					break
				}
				u -= o.rate
			}
		}
		acc.Add(inTarget / horizon)
	}
	return acc.Interval(level), nil
}

// EstimateMTTA estimates the mean time to reach any of the given absorbing
// states (capped at horizon, which must dominate the true MTTA for an
// unbiased estimate).
func (s *CTMCPathSimulator) EstimateMTTA(rng *rand.Rand, initial string, absorbing []string, horizon float64, reps int, level float64) (CI, error) {
	from, err := s.chain.Index(initial)
	if err != nil {
		return CI{}, err
	}
	target := make(map[int]bool, len(absorbing))
	for _, name := range absorbing {
		i, err := s.chain.Index(name)
		if err != nil {
			return CI{}, err
		}
		target[i] = true
	}
	if reps < 2 {
		return CI{}, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	var acc Accumulator
	for r := 0; r < reps; r++ {
		now := 0.0
		state := from
		for !target[state] && now < horizon {
			total := s.totals[state]
			if total == 0 { //numvet:allow float-eq exactly-zero total rate marks an absorbing state
				break
			}
			now += rng.ExpFloat64() / total
			u := rng.Float64() * total
			for _, o := range s.outs[state] {
				if u < o.rate {
					state = o.to
					break
				}
				u -= o.rate
			}
		}
		acc.Add(now)
	}
	return acc.Interval(level), nil
}
