// Package sim provides a small discrete-event simulation engine plus
// model-specific simulators (CTMC paths, alternating-renewal component
// processes) and replication statistics. The simulator is the repository's
// independent oracle: every analytic solver is cross-validated against it
// in tests, mirroring how the tutorial's models were validated against
// measurement data.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Handler is a scheduled event action. It runs at its scheduled time and
// may schedule further events.
type Handler func()

type event struct {
	time float64
	seq  uint64
	fn   Handler
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time { //numvet:allow float-eq heap tie-break on exact equality is intentional
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// Engine is a sequential discrete-event simulator. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now    float64
	queue  eventHeap
	seq    uint64
	halted bool
}

// ErrPastEvent is returned when an event is scheduled before current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Schedule enqueues fn to run after delay ≥ 0.
func (e *Engine) Schedule(delay float64, fn Handler) error {
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("%w: delay %g", ErrPastEvent, delay)
	}
	e.seq++
	heap.Push(&e.queue, event{time: e.now + delay, seq: e.seq, fn: fn})
	return nil
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in time order until the queue empties or until the
// clock passes `until` (events beyond it remain queued and the clock is
// left at `until`).
func (e *Engine) Run(until float64) {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		if e.queue[0].time > until {
			e.now = until
			return
		}
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.time
		ev.fn()
	}
	if e.now < until && !e.halted {
		e.now = until
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
