package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// SLA-style measures: beyond the *expected* interval availability, service
// agreements care about the *distribution* of the delivered availability
// over a billing window — P(window availability < SLA) is the breach
// probability. These estimators return the empirical distribution over
// replications.

// AvailabilitySample summarizes the distribution of per-window interval
// availability across replications.
type AvailabilitySample struct {
	// Fractions holds the sorted per-replication availability fractions.
	Fractions []float64
	// Mean is the sample mean (the classic interval availability).
	Mean float64
}

// Quantile returns the q-quantile (0 < q < 1) of the window availability.
func (a *AvailabilitySample) Quantile(q float64) (float64, error) {
	if len(a.Fractions) == 0 {
		return 0, fmt.Errorf("sim: empty availability sample")
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("sim: quantile %g outside (0,1)", q)
	}
	idx := int(q * float64(len(a.Fractions)))
	if idx >= len(a.Fractions) {
		idx = len(a.Fractions) - 1
	}
	return a.Fractions[idx], nil
}

// BreachProbability returns the fraction of windows whose availability
// fell below the SLA target.
func (a *AvailabilitySample) BreachProbability(sla float64) float64 {
	// Fractions sorted ascending: count entries < sla.
	idx := sort.SearchFloat64s(a.Fractions, sla)
	return float64(idx) / float64(len(a.Fractions))
}

// SampleIntervalAvailability simulates reps independent windows of the
// given length and returns the distribution of delivered availability.
func (s *SystemSimulator) SampleIntervalAvailability(rng *rand.Rand, window float64, reps int) (*AvailabilitySample, error) {
	if reps < 2 {
		return nil, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	if window <= 0 {
		return nil, fmt.Errorf("sim: window %g must be positive", window)
	}
	out := &AvailabilitySample{Fractions: make([]float64, 0, reps)}
	var sum float64
	for r := 0; r < reps; r++ {
		uptime, _, _ := s.simulateOnce(rng, window)
		f := uptime / window
		out.Fractions = append(out.Fractions, f)
		sum += f
	}
	sort.Float64s(out.Fractions)
	out.Mean = sum / float64(reps)
	return out, nil
}
