package lint

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// rowSumTol is the tolerance for generator/stochastic row-sum checks.
const rowSumTol = 1e-9

// Transition is one named-state rate entry of a CTMC under lint.
type Transition struct {
	From, To string
	Rate     float64
}

// CTMC is the linter's view of a continuous-time Markov chain model.
type CTMC struct {
	Transitions []Transition
	// Initial is the declared initial state ("" if none).
	Initial string
	// UpStates are the states counted as up for availability.
	UpStates []string
	// Absorbing are the states the modeler declared absorbing (e.g. the
	// targets of an MTTA measure); closed classes made of these states
	// are intentional and not reported.
	Absorbing []string
	// NeedsSteadyState is true when a steady-state or availability
	// measure was requested, which strengthens the structural checks.
	NeedsSteadyState bool
}

// CheckCTMC runs the structural checks on a CTMC description.
func CheckCTMC(m CTMC) []Diagnostic {
	var ds []Diagnostic
	states := map[string]int{} // name -> index in order of first appearance
	var names []string
	intern := func(name string) int {
		if i, ok := states[name]; ok {
			return i
		}
		i := len(names)
		states[name] = i
		names = append(names, name)
		return i
	}
	adj := map[int][]int{}
	seen := map[[2]string]bool{}
	for i, tr := range m.Transitions {
		path := fmt.Sprintf("ctmc.transitions[%d]", i)
		if tr.From == "" || tr.To == "" {
			ds = errf(ds, CodeCTMCEmptyState, path, "transition must name both endpoint states")
			continue
		}
		from, to := intern(tr.From), intern(tr.To)
		if tr.Rate <= 0 || math.IsNaN(tr.Rate) || math.IsInf(tr.Rate, 0) {
			ds = errf(ds, CodeCTMCBadRate, path+".rate",
				"rate %g is not a positive finite number", tr.Rate)
		}
		if tr.From == tr.To {
			ds = warnf(ds, CodeCTMCSelfLoop, path,
				"self-loop on state %q has no effect in a CTMC and is dropped by the solver", tr.From)
			continue
		}
		key := [2]string{tr.From, tr.To}
		if seen[key] {
			ds = warnf(ds, CodeCTMCDuplicate, path,
				"duplicate transition %s -> %s; rates will be summed", tr.From, tr.To)
		}
		seen[key] = true
		adj[from] = append(adj[from], to)
	}

	known := func(name, path string) {
		if _, ok := states[name]; !ok {
			ds = errf(ds, CodeCTMCUnknownState, path,
				"state %q does not appear in any transition", name)
		}
	}
	if m.Initial != "" {
		known(m.Initial, "ctmc.initial")
	}
	for i, s := range m.UpStates {
		known(s, fmt.Sprintf("ctmc.upStates[%d]", i))
	}
	for i, s := range m.Absorbing {
		known(s, fmt.Sprintf("ctmc.absorbing[%d]", i))
	}

	n := len(names)
	if n == 0 {
		return ds
	}

	// Reachability from the initial state.
	if _, ok := states[m.Initial]; m.Initial != "" && ok {
		reach := make([]bool, n)
		stack := []int{states[m.Initial]}
		reach[states[m.Initial]] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !reach[w] {
					reach[w] = true
					stack = append(stack, w)
				}
			}
		}
		for i, r := range reach {
			if !r {
				ds = warnf(ds, CodeCTMCUnreachable, "ctmc",
					"state %q is unreachable from initial state %q", names[i], m.Initial)
			}
		}
	}

	declared := map[string]bool{}
	for _, s := range m.Absorbing {
		declared[s] = true
	}

	// Absorbing states (no outgoing transitions).
	hasOut := make([]bool, n)
	for v, ws := range adj {
		if len(ws) > 0 {
			hasOut[v] = true
		}
	}
	for i := 0; i < n; i++ {
		if !hasOut[i] && !declared[names[i]] && m.NeedsSteadyState {
			ds = warnf(ds, CodeCTMCAbsorbing, "ctmc",
				"state %q is absorbing; the steady-state/availability result will concentrate all probability in it", names[i])
		}
	}

	// Closed communicating classes via Tarjan SCC: more than one closed
	// class means the steady-state distribution depends on the initial
	// state and the linear solve is singular in a way availability models
	// do not expect.
	comp := tarjan(n, adj)
	closed := map[int]bool{}
	for c := range comp.members {
		closed[c] = true
	}
	for v, ws := range adj {
		for _, w := range ws {
			if comp.of[v] != comp.of[w] {
				closed[comp.of[v]] = false
			}
		}
	}
	var closedClasses [][]int
	for c, isClosed := range closed {
		if !isClosed {
			continue
		}
		// Classes made entirely of declared absorbing states are the
		// intended targets of MTTA-style measures.
		allDeclared := true
		for _, v := range comp.members[c] {
			if !declared[names[v]] {
				allDeclared = false
				break
			}
		}
		if !allDeclared {
			closedClasses = append(closedClasses, comp.members[c])
		}
	}
	if len(closedClasses) > 1 {
		sev := warnf
		if m.NeedsSteadyState {
			sev = errf
		}
		ds = sev(ds, CodeCTMCReducible, "ctmc",
			"chain has %d closed communicating classes; the long-run distribution is not unique", len(closedClasses))
	}
	return ds
}

// sccResult maps vertices to strongly connected components.
type sccResult struct {
	of      []int         // vertex -> component id
	members map[int][]int // component id -> vertices
}

// tarjan computes strongly connected components of the directed graph with
// n vertices and adjacency adj.
func tarjan(n int, adj map[int][]int) sccResult {
	res := sccResult{of: make([]int, n), members: map[int][]int{}}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next, comps := 0, 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			id := comps
			comps++
			for { //numvet:allow unbounded-loop pops a finite stack; v is guaranteed on it by Tarjan's invariant
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				res.of[w] = id
				res.members[id] = append(res.members[id], w)
				if w == v {
					break
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	return res
}

// CheckGenerator validates a raw CTMC infinitesimal generator matrix:
// square shape, rows summing to zero, and nonnegative off-diagonals.
// names labels the states and may be nil.
func CheckGenerator(names []string, q [][]float64) []Diagnostic {
	var ds []Diagnostic
	n := len(q)
	label := func(i int) string {
		if i < len(names) {
			return fmt.Sprintf("state %q", names[i])
		}
		return fmt.Sprintf("state %d", i)
	}
	for i, row := range q {
		if len(row) != n {
			ds = errf(ds, CodeGenNotSquare, fmt.Sprintf("Q[%d]", i),
				"row has %d entries for %d states", len(row), n)
			continue
		}
		sum := 0.0
		for j, v := range row {
			sum += v
			if i != j && v < 0 {
				ds = errf(ds, CodeGenNegative, fmt.Sprintf("Q[%d][%d]", i, j),
					"off-diagonal rate %g of %s is negative", v, label(i))
			}
		}
		if !core.AlmostEqual(sum, 0, rowSumTol) {
			ds = errf(ds, CodeGenRowSum, fmt.Sprintf("Q[%d]", i),
				"row of %s sums to %g, want 0", label(i), sum)
		}
	}
	return ds
}

// CheckStochastic validates a DTMC one-step probability matrix: square
// shape, entries in [0,1], and rows summing to one. names labels the
// states and may be nil.
func CheckStochastic(names []string, p [][]float64) []Diagnostic {
	var ds []Diagnostic
	n := len(p)
	label := func(i int) string {
		if i < len(names) {
			return fmt.Sprintf("state %q", names[i])
		}
		return fmt.Sprintf("state %d", i)
	}
	for i, row := range p {
		if len(row) != n {
			ds = errf(ds, CodeStoNotSquare, fmt.Sprintf("P[%d]", i),
				"row has %d entries for %d states", len(row), n)
			continue
		}
		sum := 0.0
		for j, v := range row {
			sum += v
			if v < 0 || v > 1 || math.IsNaN(v) {
				ds = errf(ds, CodeStoRange, fmt.Sprintf("P[%d][%d]", i, j),
					"probability %g of %s is outside [0,1]", v, label(i))
			}
		}
		if !core.AlmostEqual(sum, 1, rowSumTol) {
			ds = errf(ds, CodeStoRowSum, fmt.Sprintf("P[%d]", i),
				"row of %s sums to %g, want 1", label(i), sum)
		}
	}
	return ds
}
