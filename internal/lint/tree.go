package lint

import (
	"fmt"
	"math"
)

// FTEvent is one basic event declaration of a fault tree under lint.
type FTEvent struct {
	Name string
	// Prob is the static failure probability (0 is legal: "never fails").
	Prob float64
	// Lifetime, when non-nil, is checked as a distribution parameter set.
	Lifetime *Dist
}

// Gate is one node of a fault-tree gate structure. Leaf nodes set Event;
// interior nodes set Op ("and", "or", "atleast", "not") and Children.
type Gate struct {
	Event    string
	Op       string
	K        int
	Children []*Gate
}

// FaultTree is the linter's view of a fault-tree model.
type FaultTree struct {
	Events []FTEvent
	Top    *Gate
}

// CheckFaultTree runs the structural checks on a fault tree: dangling
// event references, arity violations, out-of-range probabilities, cycles,
// and the shared-subtree situations where simple bottom-up evaluation is
// only a bound (the Boeing flight-control case from the tutorial).
func CheckFaultTree(ft FaultTree) []Diagnostic {
	var ds []Diagnostic
	declared := map[string]bool{}
	for i, e := range ft.Events {
		path := fmt.Sprintf("faulttree.events[%d]", i)
		if e.Name == "" {
			ds = errf(ds, CodeFTBadGate, path, "event has no name")
			continue
		}
		if declared[e.Name] {
			ds = errf(ds, CodeFTDuplicateEvent, path, "event %q declared more than once", e.Name)
		}
		declared[e.Name] = true
		if e.Prob < 0 || e.Prob > 1 || math.IsNaN(e.Prob) {
			ds = errf(ds, CodeFTProbRange, path+".prob",
				"event %q probability %g is outside [0,1]", e.Name, e.Prob)
		}
		if e.Lifetime != nil {
			ds = append(ds, CheckDist(path+".lifetime", *e.Lifetime)...)
		}
	}
	if ft.Top == nil {
		ds = errf(ds, CodeFTMissingTop, "faulttree.top", "fault tree has no top gate")
		return ds
	}

	used := map[string]int{}
	visiting := map[*Gate]bool{}
	visited := map[*Gate]bool{}
	var walk func(g *Gate, path string)
	walk = func(g *Gate, path string) {
		if g == nil {
			ds = errf(ds, CodeFTBadGate, path, "gate is null")
			return
		}
		if visiting[g] {
			ds = errf(ds, CodeFTCycle, path, "gate structure is cyclic; fault trees must be acyclic")
			return
		}
		if visited[g] && g.Event == "" {
			ds = warnf(ds, CodeFTSharedSubtree, path,
				"gate is shared between branches; bottom-up evaluation treats the copies as independent and only bounds the true probability")
			return
		}
		visited[g] = true
		if g.Event != "" {
			used[g.Event]++
			if !declared[g.Event] {
				ds = errf(ds, CodeFTUnknownEvent, path, "reference to undeclared event %q", g.Event)
			}
			if g.Op != "" || len(g.Children) > 0 {
				ds = errf(ds, CodeFTBadGate, path, "leaf %q must not also carry a gate op or children", g.Event)
			}
			return
		}
		switch g.Op {
		case "and", "or":
			if len(g.Children) == 0 {
				ds = errf(ds, CodeFTBadGate, path, "%s gate has no children", g.Op)
			}
		case "atleast":
			if g.K < 1 || g.K > len(g.Children) {
				ds = errf(ds, CodeFTArity, path,
					"atleast gate needs 1 ≤ k ≤ %d children, got k=%d", len(g.Children), g.K)
			}
		case "not":
			if len(g.Children) != 1 {
				ds = errf(ds, CodeFTBadGate, path, "not gate takes exactly one child, got %d", len(g.Children))
			}
		default:
			ds = errf(ds, CodeFTBadGate, path, "unknown gate op %q", g.Op)
		}
		visiting[g] = true
		for i, c := range g.Children {
			walk(c, fmt.Sprintf("%s.children[%d]", path, i))
		}
		visiting[g] = false
	}
	walk(ft.Top, "faulttree.top")

	for name, n := range used {
		if n > 1 {
			ds = warnf(ds, CodeFTSharedSubtree, "faulttree.top",
				"basic event %q appears %d times in the tree; min-cut based bounds are safer than naive bottom-up evaluation here", name, n)
		}
	}
	for i, e := range ft.Events {
		if e.Name != "" && used[e.Name] == 0 {
			ds = warnf(ds, CodeFTUnusedEvent, fmt.Sprintf("faulttree.events[%d]", i),
				"event %q is declared but never referenced by the gate tree", e.Name)
		}
	}
	return ds
}

// RBDComponent is one component declaration of a block diagram under lint.
type RBDComponent struct {
	Name     string
	Lifetime *Dist
	Repair   *Dist
}

// Block is one node of an RBD structure tree. Leaf nodes set Comp;
// interior nodes set Op ("series", "parallel", "kofn") and Children.
type Block struct {
	Comp     string
	Op       string
	K        int
	Children []*Block
}

// RBD is the linter's view of a reliability-block-diagram model.
type RBD struct {
	Components []RBDComponent
	Structure  *Block
}

// CheckRBD runs the structural checks on a reliability block diagram.
func CheckRBD(m RBD) []Diagnostic {
	var ds []Diagnostic
	declared := map[string]bool{}
	for i, c := range m.Components {
		path := fmt.Sprintf("rbd.components[%d]", i)
		if c.Name == "" {
			ds = errf(ds, CodeRBDBadBlock, path, "component has no name")
			continue
		}
		if declared[c.Name] {
			ds = errf(ds, CodeRBDDuplicateComp, path, "component %q declared more than once", c.Name)
		}
		declared[c.Name] = true
		if c.Lifetime == nil {
			ds = errf(ds, CodeDistBadParam, path+".lifetime", "component %q has no lifetime distribution", c.Name)
		} else {
			ds = append(ds, CheckDist(path+".lifetime", *c.Lifetime)...)
		}
		if c.Repair != nil {
			ds = append(ds, CheckDist(path+".repair", *c.Repair)...)
		}
	}
	if m.Structure == nil {
		ds = errf(ds, CodeRBDMissingStructure, "rbd.structure", "block diagram has no structure")
		return ds
	}

	used := map[string]int{}
	visiting := map[*Block]bool{}
	visited := map[*Block]bool{}
	var walk func(b *Block, path string)
	walk = func(b *Block, path string) {
		if b == nil {
			ds = errf(ds, CodeRBDBadBlock, path, "block is null")
			return
		}
		if visiting[b] {
			ds = errf(ds, CodeRBDCycle, path, "block structure is cyclic; RBDs must be trees")
			return
		}
		if visited[b] && b.Comp == "" {
			ds = warnf(ds, CodeRBDSharedBlock, path,
				"block is shared between branches; the solver treats the copies as independent")
			return
		}
		visited[b] = true
		if b.Comp != "" {
			used[b.Comp]++
			if !declared[b.Comp] {
				ds = errf(ds, CodeRBDUnknownComp, path, "reference to undeclared component %q", b.Comp)
			}
			if b.Op != "" || len(b.Children) > 0 {
				ds = errf(ds, CodeRBDBadBlock, path, "leaf %q must not also carry an op or children", b.Comp)
			}
			return
		}
		switch b.Op {
		case "series", "parallel":
			if len(b.Children) == 0 {
				ds = errf(ds, CodeRBDBadBlock, path, "%s block has no children", b.Op)
			}
		case "kofn":
			if b.K < 1 || b.K > len(b.Children) {
				ds = errf(ds, CodeRBDArity, path,
					"kofn block needs 1 ≤ k ≤ %d children, got k=%d", len(b.Children), b.K)
			}
		default:
			ds = errf(ds, CodeRBDBadBlock, path, "unknown block op %q", b.Op)
		}
		visiting[b] = true
		for i, c := range b.Children {
			walk(c, fmt.Sprintf("%s.children[%d]", path, i))
		}
		visiting[b] = false
	}
	walk(m.Structure, "rbd.structure")

	for name, n := range used {
		if n > 1 {
			ds = warnf(ds, CodeRBDSharedBlock, "rbd.structure",
				"component %q appears %d times in the structure; the copies are treated as statistically independent", name, n)
		}
	}
	for i, c := range m.Components {
		if c.Name != "" && used[c.Name] == 0 {
			ds = warnf(ds, CodeRBDUnusedComp, fmt.Sprintf("rbd.components[%d]", i),
				"component %q is declared but never placed in the structure", c.Name)
		}
	}
	return ds
}
