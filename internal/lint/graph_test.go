package lint

import (
	"strings"
	"testing"
)

func TestCheckRelGraphBadTerminals(t *testing.T) {
	ds := CheckRelGraph(RelGraph{
		Edges:  []RGEdge{{Name: "e1", From: "s", To: "t", Rel: 0.9}},
		Source: "s",
		Target: "elsewhere",
	})
	wantCode(t, ds, CodeRGBadTerminal, SevError)

	ds = CheckRelGraph(RelGraph{Edges: []RGEdge{{Name: "e1", From: "s", To: "t", Rel: 0.9}}})
	if got := codes(ds)[CodeRGBadTerminal]; got != 2 {
		t.Errorf("want 2 RG001 (source and target undeclared), got %d: %v", got, ds)
	}
}

func TestCheckRelGraphRelRange(t *testing.T) {
	ds := CheckRelGraph(RelGraph{
		Edges:  []RGEdge{{Name: "e1", From: "s", To: "t", Rel: 1.25}},
		Source: "s", Target: "t",
	})
	d := wantCode(t, ds, CodeRGRelRange, SevError)
	if d.Path != "relgraph.edges[0].rel" {
		t.Errorf("bad path %q", d.Path)
	}
}

func TestCheckRelGraphUnreachable(t *testing.T) {
	// Edge points t -> s, so t is not reachable from s.
	ds := CheckRelGraph(RelGraph{
		Edges:  []RGEdge{{Name: "e1", From: "t", To: "s", Rel: 0.9}},
		Source: "s", Target: "t",
	})
	wantCode(t, ds, CodeRGUnreachable, SevError)
}

func TestCheckRelGraphDuplicateEdgeAndOffPath(t *testing.T) {
	ds := CheckRelGraph(RelGraph{
		Edges: []RGEdge{
			{Name: "e1", From: "s", To: "t", Rel: 0.9},
			{Name: "e1", From: "s", To: "stub", Rel: 0.9},
		},
		Source: "s", Target: "t",
	})
	wantCode(t, ds, CodeRGDuplicateEdge, SevWarning)
	d := wantCode(t, ds, CodeRGOffPath, SevWarning)
	if !strings.Contains(d.Msg, "stub") {
		t.Errorf("off-path warning should name the node: %s", d.Msg)
	}
}

func TestCheckRelGraphSelfLoop(t *testing.T) {
	ds := CheckRelGraph(RelGraph{
		Edges: []RGEdge{
			{Name: "e1", From: "s", To: "t", Rel: 0.9},
			{Name: "loop", From: "s", To: "s", Rel: 0.5},
		},
		Source: "s", Target: "t",
	})
	wantCode(t, ds, CodeRGSelfLoop, SevWarning)
}

func TestCheckRelGraphClean(t *testing.T) {
	ds := CheckRelGraph(RelGraph{
		Edges: []RGEdge{
			{Name: "e1", From: "s", To: "a", Rel: 0.95},
			{Name: "e2", From: "s", To: "b", Rel: 0.9},
			{Name: "e3", From: "a", To: "b", Rel: 0.8},
			{Name: "e4", From: "a", To: "t", Rel: 0.95},
			{Name: "e5", From: "b", To: "t", Rel: 0.9},
		},
		Source: "s", Target: "t",
	})
	if len(ds) != 0 {
		t.Errorf("clean graph produced diagnostics: %v", ds)
	}
}
