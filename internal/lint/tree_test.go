package lint

import (
	"strings"
	"testing"
)

func TestCheckFaultTreeUnknownEvent(t *testing.T) {
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a", Prob: 0.1}},
		Top:    &Gate{Op: "or", Children: []*Gate{{Event: "a"}, {Event: "ghost"}}},
	})
	d := wantCode(t, ds, CodeFTUnknownEvent, SevError)
	if d.Path != "faulttree.top.children[1]" {
		t.Errorf("bad path %q", d.Path)
	}
}

func TestCheckFaultTreeArity(t *testing.T) {
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a"}, {Name: "b"}},
		Top:    &Gate{Op: "atleast", K: 3, Children: []*Gate{{Event: "a"}, {Event: "b"}}},
	})
	wantCode(t, ds, CodeFTArity, SevError)
}

func TestCheckFaultTreeProbRange(t *testing.T) {
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a", Prob: 1.5}},
		Top:    &Gate{Event: "a"},
	})
	wantCode(t, ds, CodeFTProbRange, SevError)
}

func TestCheckFaultTreeSharedEvent(t *testing.T) {
	// The Boeing-style shape: one event feeding two branches of an AND.
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "power", Prob: 0.01}, {Name: "cpu", Prob: 0.1}},
		Top: &Gate{Op: "and", Children: []*Gate{
			{Op: "or", Children: []*Gate{{Event: "power"}, {Event: "cpu"}}},
			{Op: "or", Children: []*Gate{{Event: "power"}}},
		}},
	})
	d := wantCode(t, ds, CodeFTSharedSubtree, SevWarning)
	if !strings.Contains(d.Msg, "power") {
		t.Errorf("shared-subtree warning should name the event: %s", d.Msg)
	}
}

func TestCheckFaultTreeSharedGatePointer(t *testing.T) {
	shared := &Gate{Op: "or", Children: []*Gate{{Event: "a"}, {Event: "b"}}}
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a"}, {Name: "b"}},
		Top:    &Gate{Op: "and", Children: []*Gate{shared, shared}},
	})
	wantCode(t, ds, CodeFTSharedSubtree, SevWarning)
}

func TestCheckFaultTreeUnusedAndDuplicateEvents(t *testing.T) {
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a"}, {Name: "a"}, {Name: "spare"}},
		Top:    &Gate{Event: "a"},
	})
	wantCode(t, ds, CodeFTDuplicateEvent, SevError)
	d := wantCode(t, ds, CodeFTUnusedEvent, SevWarning)
	if !strings.Contains(d.Msg, "spare") {
		t.Errorf("unused warning should name the event: %s", d.Msg)
	}
}

func TestCheckFaultTreeBadGates(t *testing.T) {
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a"}},
		Top: &Gate{Op: "and", Children: []*Gate{
			{Op: "or"}, // no children
			{Op: "xor", Children: []*Gate{{Event: "a"}}},               // unknown op
			{Op: "not", Children: []*Gate{{Event: "a"}, {Event: "a"}}}, // arity
		}},
	})
	if got := codes(ds)[CodeFTBadGate]; got != 3 {
		t.Errorf("want 3 FT006, got %d: %v", got, ds)
	}
}

func TestCheckFaultTreeCycle(t *testing.T) {
	g := &Gate{Op: "and"}
	g.Children = []*Gate{g}
	ds := CheckFaultTree(FaultTree{Top: g})
	wantCode(t, ds, CodeFTCycle, SevError)
}

func TestCheckFaultTreeMissingTop(t *testing.T) {
	ds := CheckFaultTree(FaultTree{Events: []FTEvent{{Name: "a"}}})
	wantCode(t, ds, CodeFTMissingTop, SevError)
}

func TestCheckFaultTreeLifetimeDist(t *testing.T) {
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a", Lifetime: &Dist{Kind: "exponential", Rate: -1}}},
		Top:    &Gate{Event: "a"},
	})
	d := wantCode(t, ds, CodeDistBadParam, SevError)
	if d.Path != "faulttree.events[0].lifetime" {
		t.Errorf("bad path %q", d.Path)
	}
}

func TestCheckFaultTreeClean(t *testing.T) {
	ds := CheckFaultTree(FaultTree{
		Events: []FTEvent{{Name: "a", Prob: 0.1}, {Name: "b", Prob: 0.2}},
		Top:    &Gate{Op: "and", Children: []*Gate{{Event: "a"}, {Event: "b"}}},
	})
	if len(ds) != 0 {
		t.Errorf("clean fault tree produced diagnostics: %v", ds)
	}
}

func TestCheckRBDUnknownAndUnused(t *testing.T) {
	ds := CheckRBD(RBD{
		Components: []RBDComponent{
			{Name: "web", Lifetime: &Dist{Kind: "exponential", Rate: 0.001}},
			{Name: "idle", Lifetime: &Dist{Kind: "exponential", Rate: 0.001}},
		},
		Structure: &Block{Op: "series", Children: []*Block{{Comp: "web"}, {Comp: "ghost"}}},
	})
	wantCode(t, ds, CodeRBDUnknownComp, SevError)
	wantCode(t, ds, CodeRBDUnusedComp, SevWarning)
}

func TestCheckRBDArity(t *testing.T) {
	ds := CheckRBD(RBD{
		Components: []RBDComponent{{Name: "a", Lifetime: &Dist{Kind: "exponential", Rate: 1}}},
		Structure:  &Block{Op: "kofn", K: 5, Children: []*Block{{Comp: "a"}}},
	})
	wantCode(t, ds, CodeRBDArity, SevError)
}

func TestCheckRBDSharedComponent(t *testing.T) {
	ds := CheckRBD(RBD{
		Components: []RBDComponent{{Name: "a", Lifetime: &Dist{Kind: "exponential", Rate: 1}}},
		Structure:  &Block{Op: "parallel", Children: []*Block{{Comp: "a"}, {Comp: "a"}}},
	})
	wantCode(t, ds, CodeRBDSharedBlock, SevWarning)
}

func TestCheckRBDCycle(t *testing.T) {
	b := &Block{Op: "series"}
	b.Children = []*Block{b}
	ds := CheckRBD(RBD{Structure: b})
	wantCode(t, ds, CodeRBDCycle, SevError)
}

func TestCheckRBDBadBlockAndDuplicate(t *testing.T) {
	ds := CheckRBD(RBD{
		Components: []RBDComponent{
			{Name: "a", Lifetime: &Dist{Kind: "exponential", Rate: 1}},
			{Name: "a", Lifetime: &Dist{Kind: "exponential", Rate: 1}},
		},
		Structure: &Block{Op: "mesh", Children: []*Block{{Comp: "a"}}},
	})
	wantCode(t, ds, CodeRBDDuplicateComp, SevError)
	wantCode(t, ds, CodeRBDBadBlock, SevError)
}

func TestCheckRBDMissingStructureAndLifetime(t *testing.T) {
	ds := CheckRBD(RBD{Components: []RBDComponent{{Name: "a"}}})
	wantCode(t, ds, CodeRBDMissingStructure, SevError)
	wantCode(t, ds, CodeDistBadParam, SevError) // missing lifetime
}

func TestCheckRBDClean(t *testing.T) {
	ds := CheckRBD(RBD{
		Components: []RBDComponent{
			{Name: "web", Lifetime: &Dist{Kind: "exponential", Rate: 0.001},
				Repair: &Dist{Kind: "exponential", Rate: 0.5}},
			{Name: "db", Lifetime: &Dist{Kind: "weibull", Shape: 1.5, Scale: 8000}},
		},
		Structure: &Block{Op: "series", Children: []*Block{{Comp: "web"}, {Comp: "db"}}},
	})
	if len(ds) != 0 {
		t.Errorf("clean RBD produced diagnostics: %v", ds)
	}
}
