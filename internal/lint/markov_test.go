package lint

import (
	"strings"
	"testing"
)

// codes extracts the set of diagnostic codes from a report.
func codes(ds []Diagnostic) map[string]int {
	m := map[string]int{}
	for _, d := range ds {
		m[d.Code]++
	}
	return m
}

// wantCode asserts the report contains the code at the given severity.
func wantCode(t *testing.T, ds []Diagnostic, code string, sev Severity) Diagnostic {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			if d.Severity != sev {
				t.Errorf("%s reported at severity %v, want %v (%s)", code, d.Severity, sev, d)
			}
			return d
		}
	}
	t.Errorf("missing diagnostic %s in report:\n%v", code, ds)
	return Diagnostic{}
}

// wantNoCode asserts the report does not contain the code.
func wantNoCode(t *testing.T, ds []Diagnostic, code string) {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			t.Errorf("unexpected diagnostic %s: %s", code, d)
		}
	}
}

func TestCheckCTMCBadRate(t *testing.T) {
	ds := CheckCTMC(CTMC{Transitions: []Transition{
		{From: "up", To: "down", Rate: -0.5},
		{From: "down", To: "up", Rate: 1},
	}})
	d := wantCode(t, ds, CodeCTMCBadRate, SevError)
	if d.Path != "ctmc.transitions[0].rate" {
		t.Errorf("bad path %q", d.Path)
	}
}

func TestCheckCTMCSelfLoopAndDuplicate(t *testing.T) {
	ds := CheckCTMC(CTMC{Transitions: []Transition{
		{From: "a", To: "a", Rate: 1},
		{From: "a", To: "b", Rate: 1},
		{From: "a", To: "b", Rate: 2},
		{From: "b", To: "a", Rate: 1},
	}})
	wantCode(t, ds, CodeCTMCSelfLoop, SevWarning)
	wantCode(t, ds, CodeCTMCDuplicate, SevWarning)
}

func TestCheckCTMCUnknownState(t *testing.T) {
	ds := CheckCTMC(CTMC{
		Transitions: []Transition{{From: "a", To: "b", Rate: 1}, {From: "b", To: "a", Rate: 1}},
		Initial:     "nope",
		UpStates:    []string{"a", "ghost"},
		Absorbing:   []string{"b"},
	})
	if got := codes(ds)[CodeCTMCUnknownState]; got != 2 {
		t.Fatalf("want 2 CT004 diagnostics (initial, upStates), got %d: %v", got, ds)
	}
}

func TestCheckCTMCEmptyState(t *testing.T) {
	ds := CheckCTMC(CTMC{Transitions: []Transition{{From: "", To: "b", Rate: 1}}})
	wantCode(t, ds, CodeCTMCEmptyState, SevError)
}

func TestCheckCTMCUnreachable(t *testing.T) {
	ds := CheckCTMC(CTMC{
		Transitions: []Transition{
			{From: "a", To: "b", Rate: 1},
			{From: "b", To: "a", Rate: 1},
			{From: "orphan", To: "a", Rate: 1},
		},
		Initial: "a",
	})
	d := wantCode(t, ds, CodeCTMCUnreachable, SevWarning)
	if !strings.Contains(d.Msg, "orphan") {
		t.Errorf("unreachable message should name the state: %s", d.Msg)
	}
}

func TestCheckCTMCReducible(t *testing.T) {
	// Two disjoint recurrent classes {a,b} and {c,d}.
	m := CTMC{
		Transitions: []Transition{
			{From: "a", To: "b", Rate: 1}, {From: "b", To: "a", Rate: 1},
			{From: "c", To: "d", Rate: 1}, {From: "d", To: "c", Rate: 1},
		},
	}
	m.NeedsSteadyState = true
	wantCode(t, CheckCTMC(m), CodeCTMCReducible, SevError)
	m.NeedsSteadyState = false
	wantCode(t, CheckCTMC(m), CodeCTMCReducible, SevWarning)
}

func TestCheckCTMCAbsorbingInAvailabilityModel(t *testing.T) {
	m := CTMC{
		Transitions:      []Transition{{From: "up", To: "dead", Rate: 0.01}},
		NeedsSteadyState: true,
	}
	wantCode(t, CheckCTMC(m), CodeCTMCAbsorbing, SevWarning)

	// Declaring the state absorbing (an MTTA model) silences the warning.
	m.NeedsSteadyState = false
	m.Absorbing = []string{"dead"}
	wantNoCode(t, CheckCTMC(m), CodeCTMCAbsorbing)
}

func TestCheckCTMCCleanModel(t *testing.T) {
	ds := CheckCTMC(CTMC{
		Transitions: []Transition{
			{From: "2up", To: "1up", Rate: 0.002},
			{From: "1up", To: "0up", Rate: 0.001},
			{From: "1up", To: "2up", Rate: 0.5},
			{From: "0up", To: "1up", Rate: 0.5},
		},
		Initial:          "2up",
		UpStates:         []string{"2up", "1up"},
		NeedsSteadyState: true,
	})
	if len(ds) != 0 {
		t.Errorf("clean CTMC produced diagnostics: %v", ds)
	}
}

func TestCheckGenerator(t *testing.T) {
	q := [][]float64{
		{-2, 2, 0},
		{1, -0.5, 0}, // row sums to 0.5
		{0, -1, 1},   // negative off-diagonal
	}
	ds := CheckGenerator([]string{"a", "b", "c"}, q)
	wantCode(t, ds, CodeGenRowSum, SevError)
	wantCode(t, ds, CodeGenNegative, SevError)

	ds = CheckGenerator(nil, [][]float64{{-1, 1}, {2}})
	wantCode(t, ds, CodeGenNotSquare, SevError)

	ok := [][]float64{{-2, 2}, {3, -3}}
	if ds := CheckGenerator(nil, ok); len(ds) != 0 {
		t.Errorf("valid generator produced diagnostics: %v", ds)
	}
}

func TestCheckStochastic(t *testing.T) {
	p := [][]float64{
		{0.5, 0.5},
		{1.2, -0.2}, // entries out of range (row still sums to 1)
	}
	ds := CheckStochastic(nil, p)
	if got := codes(ds)[CodeStoRange]; got != 2 {
		t.Errorf("want 2 STO002, got %d: %v", got, ds)
	}
	wantNoCode(t, ds, CodeStoRowSum)

	ds = CheckStochastic([]string{"a", "b"}, [][]float64{{0.5, 0.4}, {0, 1}})
	wantCode(t, ds, CodeStoRowSum, SevError)

	ds = CheckStochastic(nil, [][]float64{{1, 0}})
	wantCode(t, ds, CodeStoNotSquare, SevError)
}
