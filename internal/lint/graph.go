package lint

import (
	"fmt"
	"math"
)

// RGEdge is one edge of a reliability graph under lint.
type RGEdge struct {
	Name     string
	From, To string
	Rel      float64
}

// RelGraph is the linter's view of an s–t reliability graph.
type RelGraph struct {
	Edges          []RGEdge
	Source, Target string
}

// CheckRelGraph runs the structural checks on a reliability graph:
// terminal declarations, edge reliability ranges, s–t connectivity, and
// edges that can never matter because they lie on no source-to-target path.
func CheckRelGraph(g RelGraph) []Diagnostic {
	var ds []Diagnostic
	nodes := map[string]bool{}
	fwd := map[string][]string{}
	rev := map[string][]string{}
	seenName := map[string]bool{}
	for i, e := range g.Edges {
		path := fmt.Sprintf("relgraph.edges[%d]", i)
		if e.From == "" || e.To == "" {
			ds = errf(ds, CodeRGBadTerminal, path, "edge must name both endpoints")
			continue
		}
		if e.Name != "" && seenName[e.Name] {
			ds = warnf(ds, CodeRGDuplicateEdge, path, "edge name %q is reused", e.Name)
		}
		seenName[e.Name] = true
		if e.Rel < 0 || e.Rel > 1 || math.IsNaN(e.Rel) {
			ds = errf(ds, CodeRGRelRange, path+".rel",
				"edge %q reliability %g is outside [0,1]", e.Name, e.Rel)
		}
		if e.From == e.To {
			ds = warnf(ds, CodeRGSelfLoop, path, "self-loop edge %q never affects s–t reliability", e.Name)
			continue
		}
		nodes[e.From], nodes[e.To] = true, true
		fwd[e.From] = append(fwd[e.From], e.To)
		rev[e.To] = append(rev[e.To], e.From)
	}
	if g.Source == "" {
		ds = errf(ds, CodeRGBadTerminal, "relgraph.source", "no source node declared")
	} else if !nodes[g.Source] {
		ds = errf(ds, CodeRGBadTerminal, "relgraph.source", "source %q is not an endpoint of any edge", g.Source)
	}
	if g.Target == "" {
		ds = errf(ds, CodeRGBadTerminal, "relgraph.target", "no target node declared")
	} else if !nodes[g.Target] {
		ds = errf(ds, CodeRGBadTerminal, "relgraph.target", "target %q is not an endpoint of any edge", g.Target)
	}
	if !nodes[g.Source] || !nodes[g.Target] {
		return ds
	}

	fromS := reachable(g.Source, fwd)
	toT := reachable(g.Target, rev)
	if !fromS[g.Target] {
		ds = errf(ds, CodeRGUnreachable, "relgraph",
			"target %q is unreachable from source %q; reliability is identically 0", g.Target, g.Source)
	}
	for n := range nodes {
		if n == g.Source || n == g.Target {
			continue
		}
		if !fromS[n] || !toT[n] {
			ds = warnf(ds, CodeRGOffPath, "relgraph",
				"node %q lies on no path from %q to %q and never affects the result", n, g.Source, g.Target)
		}
	}
	return ds
}

// reachable returns the set of nodes reachable from start in adj.
func reachable(start string, adj map[string][]string) map[string]bool {
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}
