package lint

import "testing"

func TestCheckDist(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		code string // "" means clean
	}{
		{"valid exponential", Dist{Kind: "exponential", Rate: 0.5}, ""},
		{"zero exponential rate", Dist{Kind: "exponential", Rate: 0}, CodeDistBadParam},
		{"valid weibull", Dist{Kind: "weibull", Shape: 1.5, Scale: 8000}, ""},
		{"negative weibull shape", Dist{Kind: "weibull", Shape: -1, Scale: 10}, CodeDistBadParam},
		{"valid lognormal", Dist{Kind: "lognormal", Mu: 1.2, Sigma: 0.5}, ""},
		{"zero lognormal sigma", Dist{Kind: "lognormal", Mu: 1, Sigma: 0}, CodeDistBadParam},
		{"valid gamma", Dist{Kind: "gamma", Shape: 2, Rate: 1}, ""},
		{"valid deterministic", Dist{Kind: "deterministic", Value: 4}, ""},
		{"negative deterministic", Dist{Kind: "deterministic", Value: -1}, CodeDistBadParam},
		{"valid uniform", Dist{Kind: "uniform", Lo: 1, Hi: 2}, ""},
		{"inverted uniform", Dist{Kind: "uniform", Lo: 2, Hi: 1}, CodeDistBadParam},
		{"valid erlang", Dist{Kind: "erlang", Stages: 3, Rate: 1}, ""},
		{"zero erlang stages", Dist{Kind: "erlang", Stages: 0, Rate: 1}, CodeDistBadParam},
		{"unknown kind", Dist{Kind: "zipf", Rate: 1}, CodeDistUnknownKind},
	}
	for _, c := range cases {
		ds := CheckDist("x.lifetime", c.d)
		if c.code == "" {
			if len(ds) != 0 {
				t.Errorf("%s: unexpected diagnostics %v", c.name, ds)
			}
			continue
		}
		d := wantCode(t, ds, c.code, SevError)
		if d.Path != "x.lifetime" {
			t.Errorf("%s: bad path %q", c.name, d.Path)
		}
	}
}
