package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// SevInfo marks advisory output that needs no action.
	SevInfo Severity = iota
	// SevWarning marks a construct that solves but is likely not what the
	// modeler meant (shared subtrees, unreachable states, …).
	SevWarning
	// SevError marks a model that is structurally ill-formed; solving it
	// would panic, diverge, or silently produce garbage.
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic is one finding of the model linter.
type Diagnostic struct {
	// Code is the stable machine-readable identifier (see doc.go).
	Code string `json:"code"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// Path locates the offending element in the model document, in
	// JSON-ish dotted form, e.g. "ctmc.transitions[3].rate".
	Path string `json:"path"`
	// Msg explains the problem and, where possible, the fix.
	Msg string `json:"msg"`
}

// String formats the diagnostic as "severity CODE path: msg".
func (d Diagnostic) String() string {
	if d.Path == "" {
		return fmt.Sprintf("%s %s: %s", d.Severity, d.Code, d.Msg)
	}
	return fmt.Sprintf("%s %s %s: %s", d.Severity, d.Code, d.Path, d.Msg)
}

// errf appends an error diagnostic.
func errf(ds []Diagnostic, code, path, format string, args ...any) []Diagnostic {
	return append(ds, Diagnostic{Code: code, Severity: SevError, Path: path, Msg: fmt.Sprintf(format, args...)})
}

// warnf appends a warning diagnostic.
func warnf(ds []Diagnostic, code, path, format string, args ...any) []Diagnostic {
	return append(ds, Diagnostic{Code: code, Severity: SevWarning, Path: path, Msg: fmt.Sprintf(format, args...)})
}

// infof appends an info diagnostic.
func infof(ds []Diagnostic, code, path, format string, args ...any) []Diagnostic {
	return append(ds, Diagnostic{Code: code, Severity: SevInfo, Path: path, Msg: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Sort orders diagnostics by severity (errors first), then path, then code,
// giving deterministic reports.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Severity != ds[j].Severity {
			return ds[i].Severity > ds[j].Severity
		}
		if ds[i].Path != ds[j].Path {
			return ds[i].Path < ds[j].Path
		}
		return ds[i].Code < ds[j].Code
	})
}

// Error aggregates lint errors into a single error value; the solvers'
// pre-flight hook returns it when a model fails to lint.
type Error struct {
	Diags []Diagnostic
}

// Error implements the error interface, listing every diagnostic.
func (e *Error) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "model failed lint with %d problem(s):", len(e.Diags))
	for _, d := range e.Diags {
		sb.WriteString("\n  ")
		sb.WriteString(d.String())
	}
	return sb.String()
}

// Input bundles the per-formalism views of one model. Exactly one field is
// normally set; Model runs every analyzer whose input is present.
type Input struct {
	CTMC      *CTMC
	FaultTree *FaultTree
	RBD       *RBD
	RelGraph  *RelGraph
	SPN       *SPN
}

// Model runs all applicable analyzers over the input and returns the
// sorted findings. An empty slice means the model is clean.
func Model(in Input) []Diagnostic {
	var ds []Diagnostic
	if in.CTMC != nil {
		cds := CheckCTMC(*in.CTMC)
		if !HasErrors(cds) {
			// Structural analysis over a chain whose basic shape is broken
			// (bad rates, dangling states) would mislead; run it only on
			// otherwise-clean chains.
			cds = append(cds, CheckCTMCStructure(*in.CTMC)...)
		}
		ds = append(ds, cds...)
	}
	if in.FaultTree != nil {
		ds = append(ds, CheckFaultTree(*in.FaultTree)...)
	}
	if in.RBD != nil {
		ds = append(ds, CheckRBD(*in.RBD)...)
	}
	if in.RelGraph != nil {
		ds = append(ds, CheckRelGraph(*in.RelGraph)...)
	}
	if in.SPN != nil {
		ds = append(ds, CheckSPN(*in.SPN)...)
	}
	Sort(ds)
	return ds
}
