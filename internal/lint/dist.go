package lint

import (
	"errors"

	"repro/internal/dist"
)

// Dist is the linter's view of a distribution parameter set; it mirrors
// the JSON model format's distribution object field-for-field.
type Dist struct {
	Kind   string
	Rate   float64
	Shape  float64
	Scale  float64
	Mu     float64
	Sigma  float64
	Value  float64
	Lo, Hi float64
	Stages int
}

// CheckDist validates a distribution's parameters by running the same
// constructors the solvers use, so the lint verdict can never drift from
// what Solve would accept. path locates the distribution in the document.
func CheckDist(path string, d Dist) []Diagnostic {
	var err error
	switch d.Kind {
	case "exponential":
		_, err = dist.NewExponential(d.Rate)
	case "weibull":
		_, err = dist.NewWeibull(d.Shape, d.Scale)
	case "lognormal":
		_, err = dist.NewLognormal(d.Mu, d.Sigma)
	case "gamma":
		_, err = dist.NewGamma(d.Shape, d.Rate)
	case "deterministic":
		_, err = dist.NewDeterministic(d.Value)
	case "uniform":
		_, err = dist.NewUniform(d.Lo, d.Hi)
	case "erlang":
		_, err = dist.NewErlang(d.Stages, d.Rate)
	default:
		return errf(nil, CodeDistUnknownKind, path, "unknown distribution kind %q", d.Kind)
	}
	if err != nil {
		// The constructor error already names the bad parameter value.
		msg := err.Error()
		if errors.Is(err, dist.ErrBadParam) {
			return errf(nil, CodeDistBadParam, path, "%s", msg)
		}
		return errf(nil, CodeDistBadParam, path, "invalid parameters: %s", msg)
	}
	return nil
}
