// Package lint statically checks reliability models for structural
// problems before they reach a solver. The tutorial's workflow trusts the
// numbers a model produces, so the most dangerous inputs are the ones that
// are *almost* right: generator rows that do not sum to zero, states the
// initial state can never reach, fault-tree gates referencing events that
// were never declared, Petri-net transitions that can never fire. This
// package turns each of those into a Diagnostic with a stable code, a
// JSON-ish path into the offending document, and an actionable message.
//
// The analyzers operate on small formalism-specific input structs (CTMC,
// FaultTree, RBD, RelGraph, SPN) rather than on the modelio spec types, so
// the modelio package can depend on lint for its pre-flight hook without
// creating an import cycle; modelio.Lint adapts a parsed spec into a
// lint.Input and calls Model.
//
// # Diagnostic codes
//
// Markov chains (CheckCTMC, CheckGenerator, CheckStochastic):
//
//	CT001  error    transition rate is not a positive finite number
//	CT002  warning  self-loop transition (dropped by the solver)
//	CT003  warning  duplicate transition pair (rates are summed)
//	CT004  error    initial/up/absorbing state not in any transition
//	CT005  warning  state unreachable from the initial state
//	CT006  error*   multiple closed communicating classes (*warning
//	                unless a steady-state measure is requested)
//	CT007  warning  absorbing state in a steady-state/availability model
//	CT008  error    transition with an empty endpoint name
//	GEN001 error    generator row does not sum to zero
//	GEN002 error    negative off-diagonal generator entry
//	GEN003 error    generator matrix is not square
//	STO001 error    stochastic row does not sum to one
//	STO002 error    probability entry outside [0,1]
//	STO003 error    stochastic matrix is not square
//
// Fault trees (CheckFaultTree):
//
//	FT001  error    reference to an undeclared basic event
//	FT002  error    atleast gate with k out of range
//	FT003  error    event probability outside [0,1]
//	FT004  warning  shared subtree / repeated basic event (results are
//	                bounds, not exact — the Boeing bounding case)
//	FT005  warning  declared event never referenced
//	FT006  error    malformed gate (no children, unknown op, bad leaf)
//	FT007  error    cycle in the gate structure
//	FT008  error    basic event declared more than once
//	FT009  error    fault tree without a top gate
//
// Reliability block diagrams (CheckRBD):
//
//	RBD001 error    reference to an undeclared component
//	RBD002 error    kofn block with k out of range
//	RBD003 warning  declared component never placed in the structure
//	RBD004 warning  shared block / repeated component
//	RBD005 error    cycle in the block structure
//	RBD006 error    malformed block (no children, unknown op, bad leaf)
//	RBD007 error    component declared more than once
//	RBD008 error    block diagram without a structure
//
// Reliability graphs (CheckRelGraph):
//
//	RG001  error    missing or undeclared source/target terminal
//	RG002  error    edge reliability outside [0,1]
//	RG003  error    target unreachable from source
//	RG004  warning  duplicate edge name
//	RG005  warning  node on no source-to-target path
//	RG006  warning  self-loop edge
//
// Stochastic Petri nets (CheckSPN):
//
//	PN001  error    arc references an undeclared place
//	PN002  error    arc references an undeclared transition
//	PN003  error    transition rate/weight is not a positive finite number
//	PN004  error    structurally dead transition (inhibitor ≤ input mult)
//	PN005  warning  source transition makes its output places unbounded
//	PN006  error    negative initial token count
//	PN007  error    duplicate or empty place/transition name
//	PN008  error    nonpositive arc multiplicity
//	PN009  warning  place or transition with no arcs
//
// Structural analysis (CheckCTMCStructure, backed by internal/relstruct;
// only runs when the basic CT checks found no errors):
//
//	STR001 warning  chain is reducible with multiple recurrent classes
//	STR002 warning  transient states under a steady-state measure
//	STR003 warning  recurrent class unreachable from the initial state
//	STR004 warning  stiff recurrent class (rate-ratio spread ≥ 1e6)
//	STR005 info     states lump exactly into fewer macro-states
//	STR006 warning  periodic recurrent class (discrete chains)
//	STR007 info     initial state is transient
//	STR008 warning  chain splits into disconnected components
//	STR009 info     distilled structural solver hint
//	STR010 warning  rate span beyond double-precision comfort (≥ 1e12)
//
// Distributions (CheckDist):
//
//	DIST001 error   invalid distribution parameter
//	DIST002 error   unknown distribution kind
//
// Documents (issued by modelio.Lint, listed here so the code space stays
// in one place):
//
//	SPEC001 error   document is not valid JSON for the model schema
//	SPEC002 error   unknown or missing model type
//	SPEC003 error   model type without its matching section
//	SPEC004 error   unknown measure name
//	SPEC005 error   measure requires a field the document does not set
package lint

// Diagnostic code constants. The codes are stable identifiers: tests,
// scripts, and downstream tooling match on them, so existing codes must
// never be renumbered — only appended to.
const (
	CodeCTMCBadRate      = "CT001"
	CodeCTMCSelfLoop     = "CT002"
	CodeCTMCDuplicate    = "CT003"
	CodeCTMCUnknownState = "CT004"
	CodeCTMCUnreachable  = "CT005"
	CodeCTMCReducible    = "CT006"
	CodeCTMCAbsorbing    = "CT007"
	CodeCTMCEmptyState   = "CT008"

	CodeGenRowSum    = "GEN001"
	CodeGenNegative  = "GEN002"
	CodeGenNotSquare = "GEN003"

	CodeStoRowSum    = "STO001"
	CodeStoRange     = "STO002"
	CodeStoNotSquare = "STO003"

	CodeFTUnknownEvent   = "FT001"
	CodeFTArity          = "FT002"
	CodeFTProbRange      = "FT003"
	CodeFTSharedSubtree  = "FT004"
	CodeFTUnusedEvent    = "FT005"
	CodeFTBadGate        = "FT006"
	CodeFTCycle          = "FT007"
	CodeFTDuplicateEvent = "FT008"
	CodeFTMissingTop     = "FT009"

	CodeRBDUnknownComp      = "RBD001"
	CodeRBDArity            = "RBD002"
	CodeRBDUnusedComp       = "RBD003"
	CodeRBDSharedBlock      = "RBD004"
	CodeRBDCycle            = "RBD005"
	CodeRBDBadBlock         = "RBD006"
	CodeRBDDuplicateComp    = "RBD007"
	CodeRBDMissingStructure = "RBD008"

	CodeRGBadTerminal   = "RG001"
	CodeRGRelRange      = "RG002"
	CodeRGUnreachable   = "RG003"
	CodeRGDuplicateEdge = "RG004"
	CodeRGOffPath       = "RG005"
	CodeRGSelfLoop      = "RG006"

	CodePNUnknownPlace      = "PN001"
	CodePNUnknownTransition = "PN002"
	CodePNBadRate           = "PN003"
	CodePNDeadTransition    = "PN004"
	CodePNUnbounded         = "PN005"
	CodePNNegativeTokens    = "PN006"
	CodePNDuplicateName     = "PN007"
	CodePNBadMult           = "PN008"
	CodePNDisconnected      = "PN009"

	CodeStructReducible        = "STR001"
	CodeStructTransientMass    = "STR002"
	CodeStructUnreachableClass = "STR003"
	CodeStructStiff            = "STR004"
	CodeStructLumpable         = "STR005"
	CodeStructPeriodic         = "STR006"
	CodeStructTransientInitial = "STR007"
	CodeStructDisconnected     = "STR008"
	CodeStructSolverHint       = "STR009"
	CodeStructRateSpan         = "STR010"

	CodeDistBadParam    = "DIST001"
	CodeDistUnknownKind = "DIST002"

	CodeSpecParse   = "SPEC001"
	CodeSpecType    = "SPEC002"
	CodeSpecSection = "SPEC003"
	CodeSpecMeasure = "SPEC004"
	CodeSpecField   = "SPEC005"
)
