package lint

import (
	"strings"
	"testing"
)

func TestModelRunsAllAnalyzers(t *testing.T) {
	in := Input{
		CTMC: &CTMC{Transitions: []Transition{{From: "a", To: "b", Rate: -1}, {From: "b", To: "a", Rate: 1}}},
		FaultTree: &FaultTree{
			Events: []FTEvent{{Name: "e", Prob: 2}},
			Top:    &Gate{Event: "e"},
		},
	}
	ds := Model(in)
	wantCode(t, ds, CodeCTMCBadRate, SevError)
	wantCode(t, ds, CodeFTProbRange, SevError)
}

func TestModelCleanInputIsEmpty(t *testing.T) {
	ds := Model(Input{RelGraph: &RelGraph{
		Edges:  []RGEdge{{Name: "e", From: "s", To: "t", Rel: 0.9}},
		Source: "s", Target: "t",
	}})
	if len(ds) != 0 {
		t.Errorf("clean input produced diagnostics: %v", ds)
	}
}

func TestSortOrdersErrorsFirst(t *testing.T) {
	ds := []Diagnostic{
		{Code: "B", Severity: SevWarning, Path: "b"},
		{Code: "A", Severity: SevError, Path: "z"},
		{Code: "C", Severity: SevError, Path: "a"},
	}
	Sort(ds)
	if ds[0].Code != "C" || ds[1].Code != "A" || ds[2].Code != "B" {
		t.Errorf("bad order: %v", ds)
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors([]Diagnostic{{Severity: SevWarning}}) {
		t.Error("warnings alone must not count as errors")
	}
	if !HasErrors([]Diagnostic{{Severity: SevWarning}, {Severity: SevError}}) {
		t.Error("error diagnostic not detected")
	}
}

func TestDiagnosticAndErrorStrings(t *testing.T) {
	d := Diagnostic{Code: "CT001", Severity: SevError, Path: "ctmc.transitions[0].rate", Msg: "rate -1 is not a positive finite number"}
	if got := d.String(); got != "error CT001 ctmc.transitions[0].rate: rate -1 is not a positive finite number" {
		t.Errorf("bad Diagnostic.String: %q", got)
	}
	e := &Error{Diags: []Diagnostic{d}}
	if !strings.Contains(e.Error(), "1 problem") || !strings.Contains(e.Error(), "CT001") {
		t.Errorf("bad Error.Error: %q", e.Error())
	}
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[Severity]string{SevError: "error", SevWarning: "warning", SevInfo: "info"} {
		if sev.String() != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, sev.String(), want)
		}
	}
}
