package lint

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SPNPlace is one place declaration under lint.
type SPNPlace struct {
	Name   string
	Tokens int
}

// SPNTransition is one transition declaration under lint.
type SPNTransition struct {
	Name string
	// Kind is "timed" or "immediate".
	Kind string
	// Rate is the exponential rate (timed) or weight (immediate).
	Rate float64
}

// SPNArc is one arc declaration under lint.
type SPNArc struct {
	// Kind is "input", "output", or "inhibitor".
	Kind       string
	Place      string
	Transition string
	// Mult is the multiplicity; 0 means the default of 1.
	Mult int
}

// SPN is the linter's view of a stochastic Petri net.
type SPN struct {
	Places      []SPNPlace
	Transitions []SPNTransition
	Arcs        []SPNArc
}

// CheckSPN runs the structural checks on a stochastic Petri net: dangling
// arc references, invalid rates and multiplicities, structurally dead
// transitions, and source transitions that make their output places
// obviously unbounded.
func CheckSPN(n SPN) []Diagnostic {
	var ds []Diagnostic
	places := map[string]bool{}
	for i, p := range n.Places {
		path := fmt.Sprintf("spn.places[%d]", i)
		if p.Name == "" {
			ds = errf(ds, CodePNDuplicateName, path, "place has no name")
			continue
		}
		if places[p.Name] {
			ds = errf(ds, CodePNDuplicateName, path, "place %q declared more than once", p.Name)
		}
		places[p.Name] = true
		if p.Tokens < 0 {
			ds = errf(ds, CodePNNegativeTokens, path+".tokens",
				"place %q starts with %d tokens; token counts cannot be negative", p.Name, p.Tokens)
		}
	}
	trans := map[string]bool{}
	for i, t := range n.Transitions {
		path := fmt.Sprintf("spn.transitions[%d]", i)
		if t.Name == "" {
			ds = errf(ds, CodePNDuplicateName, path, "transition has no name")
			continue
		}
		if trans[t.Name] || places[t.Name] {
			ds = errf(ds, CodePNDuplicateName, path, "name %q is already in use", t.Name)
		}
		trans[t.Name] = true
		if t.Rate <= 0 || math.IsNaN(t.Rate) || math.IsInf(t.Rate, 0) {
			what := "rate"
			if t.Kind == "immediate" {
				what = "weight"
			}
			ds = errf(ds, CodePNBadRate, path+".rate",
				"transition %q %s %g is not a positive finite number", t.Name, what, t.Rate)
		}
	}

	// Per-transition arc summary: input/inhibitor multiplicities by place,
	// and whether the transition touches any arc at all.
	type arcSet struct {
		in, inhib map[string]int
		outputs   []string
		touched   bool
	}
	byTrans := map[string]*arcSet{}
	for name := range trans {
		byTrans[name] = &arcSet{in: map[string]int{}, inhib: map[string]int{}}
	}
	placeTouched := map[string]bool{}
	for i, a := range n.Arcs {
		path := fmt.Sprintf("spn.arcs[%d]", i)
		if !places[a.Place] {
			ds = errf(ds, CodePNUnknownPlace, path, "arc references undeclared place %q", a.Place)
		}
		if !trans[a.Transition] {
			ds = errf(ds, CodePNUnknownTransition, path, "arc references undeclared transition %q", a.Transition)
		}
		mult := a.Mult
		if mult == 0 {
			mult = 1
		}
		if mult < 0 {
			ds = errf(ds, CodePNBadMult, path+".mult",
				"arc multiplicity %d must be positive", a.Mult)
		}
		if !places[a.Place] || !trans[a.Transition] {
			continue
		}
		placeTouched[a.Place] = true
		set := byTrans[a.Transition]
		set.touched = true
		switch a.Kind {
		case "input":
			set.in[a.Place] += mult
		case "inhibitor":
			// Multiple inhibitor arcs on a pair: the tightest bound wins.
			if cur, ok := set.inhib[a.Place]; !ok || mult < cur {
				set.inhib[a.Place] = mult
			}
		case "output":
			set.outputs = append(set.outputs, a.Place)
		}
	}

	for i, t := range n.Transitions {
		set, ok := byTrans[t.Name]
		if !ok {
			continue
		}
		path := fmt.Sprintf("spn.transitions[%d]", i)
		if !set.touched {
			ds = warnf(ds, CodePNDisconnected, path,
				"transition %q has no arcs; it is either always enabled or a leftover", t.Name)
			continue
		}
		// Structurally dead: needs ≥ mult tokens in a place while an
		// inhibitor on the same place forbids ≥ inhibMult ≤ mult tokens.
		for place, need := range set.in {
			if bound, ok := set.inhib[place]; ok && bound <= need {
				ds = errf(ds, CodePNDeadTransition, path,
					"transition %q needs %d token(s) in %q but its inhibitor arc disables it at %d; it can never fire", t.Name, need, place, bound)
			}
		}
		// Source transition: always enabled, so every output place grows
		// without bound and reachability exploration cannot terminate.
		if len(set.in) == 0 && len(set.inhib) == 0 && len(set.outputs) > 0 {
			outs := append([]string(nil), set.outputs...)
			sort.Strings(outs)
			ds = warnf(ds, CodePNUnbounded, path,
				"transition %q has no input or inhibitor arcs; output place(s) %s are unbounded and the reachability graph is infinite", t.Name, strings.Join(outs, ", "))
		}
	}
	for i, p := range n.Places {
		if p.Name != "" && !placeTouched[p.Name] {
			ds = warnf(ds, CodePNDisconnected, fmt.Sprintf("spn.places[%d]", i),
				"place %q is not connected to any transition", p.Name)
		}
	}
	return ds
}
