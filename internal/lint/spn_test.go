package lint

import (
	"strings"
	"testing"
)

func mm1kNet() SPN {
	return SPN{
		Places: []SPNPlace{{Name: "queue", Tokens: 0}, {Name: "slots", Tokens: 5}},
		Transitions: []SPNTransition{
			{Name: "arrive", Kind: "timed", Rate: 3},
			{Name: "serve", Kind: "timed", Rate: 4},
		},
		Arcs: []SPNArc{
			{Kind: "input", Place: "slots", Transition: "arrive"},
			{Kind: "output", Place: "queue", Transition: "arrive"},
			{Kind: "input", Place: "queue", Transition: "serve"},
			{Kind: "output", Place: "slots", Transition: "serve"},
		},
	}
}

func TestCheckSPNClean(t *testing.T) {
	if ds := CheckSPN(mm1kNet()); len(ds) != 0 {
		t.Errorf("clean net produced diagnostics: %v", ds)
	}
}

func TestCheckSPNUnknownReferences(t *testing.T) {
	n := mm1kNet()
	n.Arcs = append(n.Arcs,
		SPNArc{Kind: "input", Place: "ghost", Transition: "serve"},
		SPNArc{Kind: "output", Place: "queue", Transition: "phantom"},
	)
	ds := CheckSPN(n)
	wantCode(t, ds, CodePNUnknownPlace, SevError)
	wantCode(t, ds, CodePNUnknownTransition, SevError)
}

func TestCheckSPNBadRateAndTokens(t *testing.T) {
	n := mm1kNet()
	n.Transitions[0].Rate = 0
	n.Places[0].Tokens = -2
	ds := CheckSPN(n)
	wantCode(t, ds, CodePNBadRate, SevError)
	wantCode(t, ds, CodePNNegativeTokens, SevError)
}

func TestCheckSPNDeadTransition(t *testing.T) {
	// serve needs 2 tokens in queue but an inhibitor disables it at 1: it
	// can never be enabled.
	n := mm1kNet()
	n.Arcs[2].Mult = 2
	n.Arcs = append(n.Arcs, SPNArc{Kind: "inhibitor", Place: "queue", Transition: "serve", Mult: 1})
	ds := CheckSPN(n)
	d := wantCode(t, ds, CodePNDeadTransition, SevError)
	if !strings.Contains(d.Msg, "serve") {
		t.Errorf("dead-transition error should name the transition: %s", d.Msg)
	}
}

func TestCheckSPNUnboundedSource(t *testing.T) {
	n := SPN{
		Places:      []SPNPlace{{Name: "pool", Tokens: 0}},
		Transitions: []SPNTransition{{Name: "gen", Kind: "timed", Rate: 1}},
		Arcs:        []SPNArc{{Kind: "output", Place: "pool", Transition: "gen"}},
	}
	d := wantCode(t, CheckSPN(n), CodePNUnbounded, SevWarning)
	if !strings.Contains(d.Msg, "pool") {
		t.Errorf("unbounded warning should name the place: %s", d.Msg)
	}
}

func TestCheckSPNDuplicateAndDisconnected(t *testing.T) {
	n := SPN{
		Places: []SPNPlace{{Name: "p", Tokens: 1}, {Name: "p", Tokens: 0}, {Name: "lonely", Tokens: 0}},
		Transitions: []SPNTransition{
			{Name: "t1", Kind: "timed", Rate: 1},
			{Name: "idle", Kind: "timed", Rate: 1},
		},
		Arcs: []SPNArc{
			{Kind: "input", Place: "p", Transition: "t1"},
			{Kind: "output", Place: "p", Transition: "t1"},
		},
	}
	ds := CheckSPN(n)
	wantCode(t, ds, CodePNDuplicateName, SevError)
	if got := codes(ds)[CodePNDisconnected]; got != 2 {
		t.Errorf("want 2 PN009 (transition idle, place lonely), got %d: %v", got, ds)
	}
}

func TestCheckSPNBadMultiplicity(t *testing.T) {
	n := mm1kNet()
	n.Arcs[0].Mult = -1
	wantCode(t, CheckSPN(n), CodePNBadMult, SevError)
}
