package lint

import (
	"fmt"
	"strings"

	"repro/internal/relstruct"
)

// This file translates internal/relstruct's static structural analysis
// into STR-coded diagnostics. The checks only run when the basic CT
// checks found no errors (structure computed over garbage rates would
// mislead), and none of them is error severity: structure is advice —
// the CT006-style escalation for genuinely unsolvable shapes stays in
// CheckCTMC.

// CheckCTMCStructure analyzes the chain's transition graph (SCC
// condensation, stiffness, lumpability) and reports the structural
// findings. The lumpability seed separates the up states and the
// declared absorbing states, matching what the automatic lumping
// pre-pass in modelio preserves.
func CheckCTMCStructure(m CTMC) []Diagnostic {
	var nts []relstruct.NamedTransition
	for _, tr := range m.Transitions {
		if tr.From == "" || tr.To == "" {
			continue
		}
		nts = append(nts, relstruct.NamedTransition{From: tr.From, To: tr.To, Weight: tr.Rate})
	}
	if len(nts) == 0 {
		return nil
	}
	in := relstruct.FromNamed(nts, false)
	in.Seed = relstruct.SeedSets(in.Names, m.UpStates, m.Absorbing)
	rep, err := relstruct.Analyze(in)
	if err != nil {
		return nil
	}
	return CheckStructReport(rep, m)
}

// CheckStructReport turns a precomputed structural report into STR
// diagnostics; CheckCTMCStructure is the usual entry, but callers that
// already hold a report (discrete chains, relcli analyze) can reuse it.
func CheckStructReport(rep *relstruct.StructReport, m CTMC) []Diagnostic {
	var ds []Diagnostic
	declared := make(map[string]bool, len(m.Absorbing))
	for _, s := range m.Absorbing {
		declared[s] = true
	}

	// STR001: reducible with multiple recurrent classes. Classes made
	// entirely of declared absorbing states are intended MTTA targets and
	// do not count, mirroring CT006.
	var recurrentReps []string
	undeclared := 0
	for _, cl := range rep.Classes {
		if !cl.Recurrent {
			continue
		}
		allDeclared := true
		for _, s := range cl.States {
			if !declared[s] {
				allDeclared = false
				break
			}
		}
		recurrentReps = append(recurrentReps, cl.States[0])
		if !allDeclared {
			undeclared++
		}
	}
	if undeclared > 1 {
		ds = warnf(ds, CodeStructReducible, "ctmc",
			"chain is reducible with %d recurrent classes (entered via %s); the long-run distribution depends on the initial state",
			rep.RecurrentClasses, exampleList(recurrentReps))
	}

	// STR002: transient mass under a steady-state measure.
	if m.NeedsSteadyState && rep.TransientStates > 0 {
		ds = warnf(ds, CodeStructTransientMass, "ctmc",
			"%d transient state(s) (e.g. %s) carry zero steady-state probability; steadystate/availability results ignore them",
			rep.TransientStates, exampleList(transientExamples(rep)))
	}

	// STR003: a recurrent class the initial state can never enter.
	if m.Initial != "" {
		if unreachable := unreachableRecurrent(rep, m); len(unreachable) > 0 {
			ds = warnf(ds, CodeStructUnreachableClass, "ctmc",
				"%d recurrent class(es) (entered via %s) are unreachable from initial state %q and can never accumulate probability",
				len(unreachable), exampleList(unreachable), m.Initial)
		}
	}

	// STR004: stiffness, per recurrent class.
	for _, cl := range rep.Classes {
		if cl.Recurrent && cl.RateRatio >= relstruct.StiffThreshold {
			ds = warnf(ds, CodeStructStiff, "ctmc",
				"recurrent class containing %q is stiff (rate-ratio spread %.3g); iterative solvers may stall — prefer solver \"gth\" or \"chain\"",
				cl.States[0], cl.RateRatio)
		}
	}

	// STR005: exact lumpability.
	if rep.Lumping.Lumpable {
		ds = infof(ds, CodeStructLumpable, "ctmc",
			"%d states lump exactly into %d macro-states (reduction %.3gx); availability/mtta solves aggregate automatically",
			rep.States, rep.Lumping.Blocks, rep.Lumping.Ratio)
	}

	// STR006: periodicity (discrete chains only).
	if rep.Discrete {
		for _, cl := range rep.Classes {
			if cl.Recurrent && cl.Period > 1 {
				ds = warnf(ds, CodeStructPeriodic, "ctmc",
					"recurrent class containing %q is periodic (period %d); power iteration will not converge — use an exact method",
					cl.States[0], cl.Period)
			}
		}
	}

	// STR007: transient initial state.
	if m.Initial != "" {
		for _, cl := range rep.Classes {
			if !cl.Recurrent && containsState(cl.States, m.Initial) {
				ds = infof(ds, CodeStructTransientInitial, "ctmc.initial",
					"initial state %q is transient; the chain leaves it forever with probability 1 (mtta/transient measures capture this, steady state does not)",
					m.Initial)
				break
			}
		}
	}

	// STR008: independent sub-chains.
	if rep.Components > 1 {
		ds = warnf(ds, CodeStructDisconnected, "ctmc",
			"chain splits into %d disconnected components; solve them as separate models or check for missing transitions",
			rep.Components)
	}

	// STR009: the distilled solver hint.
	if rep.Hint.Method != "" || rep.Hint.Reduce != "" {
		ds = infof(ds, CodeStructSolverHint, "ctmc",
			"structural solver hint: %s", hintText(rep.Hint))
	}

	// STR010: rate span beyond double-precision comfort.
	if rep.Stiffness.Ratio >= relstruct.ExtremeSpanThreshold {
		ds = warnf(ds, CodeStructRateSpan, "ctmc",
			"transition rates span %.3g to %.3g (ratio %.3g); consider rescaling time units before trusting iterative results",
			rep.Stiffness.RateMin, rep.Stiffness.RateMax, rep.Stiffness.Ratio)
	}
	return ds
}

// hintText renders a relstruct.Hint for a diagnostic message.
func hintText(h relstruct.Hint) string {
	var parts []string
	if h.Method != "" {
		parts = append(parts, fmt.Sprintf("try method %q first", h.Method))
	}
	if h.Reduce != "" {
		parts = append(parts, fmt.Sprintf("reduce via %q", h.Reduce))
	}
	if h.Reason != "" {
		parts = append(parts, "("+h.Reason+")")
	}
	return strings.Join(parts, " ")
}

// transientExamples returns the first state of each transient class.
func transientExamples(rep *relstruct.StructReport) []string {
	var out []string
	for _, cl := range rep.Classes {
		if !cl.Recurrent {
			out = append(out, cl.States[0])
		}
	}
	return out
}

// unreachableRecurrent lists a representative of every recurrent class
// with no path from the initial state.
func unreachableRecurrent(rep *relstruct.StructReport, m CTMC) []string {
	adj := map[string][]string{}
	for _, tr := range m.Transitions {
		if tr.From == "" || tr.To == "" {
			continue
		}
		adj[tr.From] = append(adj[tr.From], tr.To)
	}
	if _, ok := adj[m.Initial]; !ok {
		// The initial state may still be a sink that appears only as a
		// target; reachability then covers just itself.
		found := false
		for _, tr := range m.Transitions {
			if tr.To == m.Initial || tr.From == m.Initial {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	reach := map[string]bool{m.Initial: true}
	stack := []string{m.Initial}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !reach[w] {
				reach[w] = true
				stack = append(stack, w)
			}
		}
	}
	var out []string
	for _, cl := range rep.Classes {
		if !cl.Recurrent {
			continue
		}
		hit := false
		for _, s := range cl.States {
			if reach[s] {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, cl.States[0])
		}
	}
	return out
}

// exampleList joins up to four names for a message.
func exampleList(names []string) string {
	const maxExamples = 4
	quoted := make([]string, 0, maxExamples+1)
	for i, n := range names {
		if i == maxExamples {
			quoted = append(quoted, "…")
			break
		}
		quoted = append(quoted, fmt.Sprintf("%q", n))
	}
	return strings.Join(quoted, ", ")
}

func containsState(states []string, s string) bool {
	for _, x := range states {
		if x == s {
			return true
		}
	}
	return false
}
