package lint

import (
	"strings"
	"testing"
)

// codesOf extracts the codes of a diagnostic list.
func codesOf(ds []Diagnostic) map[string]int {
	m := map[string]int{}
	for _, d := range ds {
		m[d.Code]++
	}
	return m
}

func TestStructCleanChainNoFindings(t *testing.T) {
	ds := CheckCTMCStructure(CTMC{
		Transitions: []Transition{
			{"up", "down", 0.01},
			{"down", "up", 1.0},
		},
	})
	if len(ds) != 0 {
		t.Fatalf("clean irreducible chain produced findings: %v", ds)
	}
}

func TestStructReducibleAndTransientMass(t *testing.T) {
	m := CTMC{
		Transitions: []Transition{
			{"start", "a", 1},
			{"start", "b", 1},
			{"a", "a2", 1}, {"a2", "a", 1},
			{"b", "b2", 1}, {"b2", "b", 1},
		},
		NeedsSteadyState: true,
	}
	ds := CheckCTMCStructure(m)
	codes := codesOf(ds)
	if codes[CodeStructReducible] != 1 {
		t.Fatalf("want one STR001, got %v", ds)
	}
	if codes[CodeStructTransientMass] != 1 {
		t.Fatalf("want one STR002, got %v", ds)
	}
}

func TestStructDeclaredAbsorbingNotReducible(t *testing.T) {
	// One recurrent class plus a declared-absorbing failure state: an
	// intentional MTTA shape, not a reducibility finding.
	m := CTMC{
		Transitions: []Transition{
			{"ok", "deg", 0.2},
			{"deg", "ok", 1.0},
			{"deg", "failed", 0.1},
		},
		Initial:   "ok",
		Absorbing: []string{"failed"},
	}
	ds := CheckCTMCStructure(m)
	codes := codesOf(ds)
	if codes[CodeStructReducible] != 0 {
		t.Fatalf("declared absorbing target reported reducible: %v", ds)
	}
	if codes[CodeStructTransientInitial] != 1 {
		t.Fatalf("want STR007 for transient initial, got %v", ds)
	}
	if codes[CodeStructSolverHint] != 1 {
		t.Fatalf("want STR009 hint, got %v", ds)
	}
}

func TestStructUnreachableRecurrentClass(t *testing.T) {
	m := CTMC{
		Transitions: []Transition{
			{"a", "b", 1}, {"b", "a", 1},
			{"c", "d", 1}, {"d", "c", 1},
		},
		Initial: "a",
	}
	ds := CheckCTMCStructure(m)
	codes := codesOf(ds)
	if codes[CodeStructUnreachableClass] != 1 {
		t.Fatalf("want STR003, got %v", ds)
	}
	if codes[CodeStructDisconnected] != 1 {
		t.Fatalf("want STR008, got %v", ds)
	}
}

func TestStructStiffAndRateSpan(t *testing.T) {
	m := CTMC{
		Transitions: []Transition{
			{"up", "down", 1e-9},
			{"down", "up", 5e6},
		},
	}
	ds := CheckCTMCStructure(m)
	codes := codesOf(ds)
	if codes[CodeStructStiff] != 1 {
		t.Fatalf("want STR004, got %v", ds)
	}
	if codes[CodeStructRateSpan] != 1 {
		t.Fatalf("want STR010, got %v", ds)
	}
	if codes[CodeStructSolverHint] != 1 {
		t.Fatalf("want STR009, got %v", ds)
	}
	for _, d := range ds {
		if d.Code == CodeStructSolverHint && !strings.Contains(d.Msg, `"gth"`) {
			t.Fatalf("hint does not suggest gth: %q", d.Msg)
		}
	}
}

func TestStructLumpableInfo(t *testing.T) {
	lam, mu := 0.01, 1.0
	m := CTMC{
		Transitions: []Transition{
			{"00", "01", lam}, {"00", "10", lam},
			{"01", "11", lam}, {"10", "11", lam},
			{"01", "00", mu}, {"10", "00", mu},
			{"11", "01", mu}, {"11", "10", mu},
		},
		UpStates: []string{"00", "01", "10"},
	}
	ds := CheckCTMCStructure(m)
	codes := codesOf(ds)
	if codes[CodeStructLumpable] != 1 {
		t.Fatalf("want STR005, got %v", ds)
	}
	if codes[CodeStructSolverHint] != 1 {
		t.Fatalf("want STR009 lump hint, got %v", ds)
	}
}

func TestStructOnlyAdvisorySeverities(t *testing.T) {
	// Structure findings are advice: none may be error severity, so they
	// can never block a solve on their own.
	m := CTMC{
		Transitions: []Transition{
			{"start", "a", 1e-9},
			{"start", "b", 5e6},
			{"a", "a2", 1}, {"a2", "a", 1},
			{"b", "b2", 1}, {"b2", "b", 1},
			{"c", "d", 1}, {"d", "c", 1},
		},
		Initial:          "start",
		NeedsSteadyState: true,
	}
	ds := CheckCTMCStructure(m)
	if len(ds) == 0 {
		t.Fatal("expected findings")
	}
	for _, d := range ds {
		if d.Severity == SevError {
			t.Fatalf("structural finding at error severity: %v", d)
		}
	}
}

func TestStructEmptyAndBrokenInputs(t *testing.T) {
	if ds := CheckCTMCStructure(CTMC{}); len(ds) != 0 {
		t.Fatalf("empty chain produced findings: %v", ds)
	}
	// Transitions with empty endpoints are skipped rather than crashing.
	if ds := CheckCTMCStructure(CTMC{Transitions: []Transition{{"", "x", 1}}}); len(ds) != 0 {
		t.Fatalf("broken transitions produced findings: %v", ds)
	}
}
