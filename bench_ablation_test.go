package repro

// Ablation benchmarks for the design decisions DESIGN.md commits to:
//
//   - GTH (dense, exact) vs SOR (sparse, iterative) steady-state solvers —
//     locates the crossover behind markov's 600-state switch;
//   - uniformization with vs without steady-state detection on stiff
//     horizons — justifies exposing the option;
//   - BDD variable ordering: interleaved vs blocked orderings of a
//     series-of-parallel structure — justifies compiling components in
//     structure order;
//   - MOCUS vs BDD minimal-cut extraction — justifies the BDD default.

import (
	"strconv"
	"testing"

	"repro/internal/bdd"
	"repro/internal/faulttree"
	"repro/internal/linalg"
	"repro/internal/markov"
)

// birthDeathDense returns a birth-death generator densely.
func birthDeathDense(n int) *linalg.Dense {
	q := linalg.NewDense(n, n)
	for i := 0; i < n-1; i++ {
		q.Set(i, i+1, 1)
		q.Set(i+1, i, 2)
	}
	return q
}

// birthDeathCSR returns the same generator sparsely, with diagonals.
func birthDeathCSR(n int) *linalg.CSR {
	coo := linalg.NewCOO(n, n)
	for i := 0; i < n-1; i++ {
		_ = coo.Add(i, i+1, 1)
		_ = coo.Add(i+1, i, 2)
	}
	for i := 0; i < n; i++ {
		var out float64
		if i < n-1 {
			out++
		}
		if i > 0 {
			out += 2
		}
		_ = coo.Add(i, i, -out)
	}
	return coo.ToCSR()
}

// BenchmarkAblationGTHvsSOR sweeps the chain size across the solver
// crossover used by markov.SteadyState.
func BenchmarkAblationGTHvsSOR(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		dense := birthDeathDense(n)
		sparse := birthDeathCSR(n)
		b.Run("gth/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linalg.GTH(dense); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("sor/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := linalg.SORSteadyState(sparse, linalg.SOROptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSteadyStateDetection compares uniformization with and
// without steady-state detection on a stiff long-horizon problem.
func BenchmarkAblationSteadyStateDetection(b *testing.B) {
	c := markov.NewCTMC()
	if err := c.AddRate("up", "down", 1e-4); err != nil {
		b.Fatal(err)
	}
	if err := c.AddRate("down", "up", 5); err != nil {
		b.Fatal(err)
	}
	p0, err := c.InitialAt("up")
	if err != nil {
		b.Fatal(err)
	}
	const horizon = 5000.0
	b.Run("detection=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Transient(horizon, p0, markov.TransientOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("detection=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := markov.TransientOptions{SteadyStateDetection: true}
			if _, err := c.Transient(horizon, p0, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBDDOrdering compares the BDD size/time of a
// series-of-parallel-pairs structure under structure order (pair members
// adjacent) vs blocked order (all 'a' units, then all 'b' units).
func BenchmarkAblationBDDOrdering(b *testing.B) {
	// The blocked ordering grows the BDD as 2^pairs (vs 2·pairs for the
	// interleaved ordering), so it runs at a smaller size: 12 pairs is
	// already a 4096-node vs 24-node gap without making the suite crawl.
	build := func(pairs int, varOf func(pair, member int) int) (int, error) {
		m := bdd.New(2 * pairs)
		f := bdd.True
		for p := 0; p < pairs; p++ {
			va, err := m.Var(varOf(p, 0))
			if err != nil {
				return 0, err
			}
			vb, err := m.Var(varOf(p, 1))
			if err != nil {
				return 0, err
			}
			f = m.And(f, m.Or(va, vb))
		}
		return m.NodeCount(f), nil
	}
	b.Run("interleaved/pairs=12", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			var err error
			nodes, err = build(12, func(pair, member int) int { return 2*pair + member })
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("blocked/pairs=12", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			var err error
			nodes, err = build(12, func(pair, member int) int { return pair + member*12 })
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
}

// BenchmarkAblationMOCUSvsBDD compares cut-set extraction strategies on a
// growing OR-of-AND-pairs tree.
func BenchmarkAblationMOCUSvsBDD(b *testing.B) {
	build := func(pairs int) *faulttree.Tree {
		gates := make([]*faulttree.Node, pairs)
		for i := 0; i < pairs; i++ {
			a := &faulttree.Event{Name: "a" + strconv.Itoa(i), Prob: 1e-3}
			c := &faulttree.Event{Name: "b" + strconv.Itoa(i), Prob: 1e-3}
			gates[i] = faulttree.And(faulttree.Basic(a), faulttree.Basic(c))
		}
		tree, err := faulttree.New(faulttree.Or(gates...))
		if err != nil {
			b.Fatal(err)
		}
		return tree
	}
	for _, pairs := range []int{20, 80} {
		tree := build(pairs)
		b.Run("bdd/pairs="+strconv.Itoa(pairs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if cuts := tree.MinimalCutSets(); len(cuts) != pairs {
					b.Fatalf("cuts = %d", len(cuts))
				}
			}
		})
		b.Run("mocus/pairs="+strconv.Itoa(pairs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cuts, err := tree.MOCUS(0)
				if err != nil {
					b.Fatal(err)
				}
				if len(cuts) != pairs {
					b.Fatalf("cuts = %d", len(cuts))
				}
			}
		})
	}
}
