// Sun reproduces the shape of the Sun Microsystems high-availability
// platform study (one of the tutorial's Sun examples): a cluster of
// redundant subsystems whose repairs all contend for one field-service
// team, solved hierarchically with fixed-point iteration. Each subsystem
// is a small Markov model taking an *effective* repair rate; the repair
// contention couples the submodels, and the composition iterates until the
// shared-repair utilization is self-consistent. The fixed point is compared
// against the exact monolithic GSPN of the entire platform.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/hier"
	"repro/internal/markov"
	"repro/internal/spn"
)

const (
	nSubsystems = 3
	lam         = 1.0 / 5e3 // per-unit failure rate (per hour)
	mu          = 1.0 / 8   // repair rate of the single field-service team
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const minutesPerYear = 525960

	// --- exact: monolithic GSPN with one global repair facility ---------
	exactA, states, err := monolithic()
	if err != nil {
		return err
	}

	// --- hierarchical fixed point ----------------------------------------
	hierA, iters, err := fixedPoint()
	if err != nil {
		return err
	}

	fmt.Println("Sun-style HA platform: shared field service across subsystems")
	fmt.Println()
	fmt.Printf("subsystems: %d duplex pairs, one shared repair team\n\n", nSubsystems)
	fmt.Printf("%-28s %-14s %s\n", "method", "availability", "downtime (min/yr)")
	fmt.Printf("%-28s %.9f   %8.2f   (%d tangible states)\n",
		"monolithic GSPN (exact)", exactA, (1-exactA)*minutesPerYear, states)
	fmt.Printf("%-28s %.9f   %8.2f   (%d sweeps, %d-state submodels)\n",
		"hierarchical fixed point", hierA, (1-hierA)*minutesPerYear, iters, 3)
	fmt.Println()
	relErr := math.Abs(hierA-exactA) / (1 - exactA)
	fmt.Printf("unavailability relative error of the fixed point: %.2f%%\n", relErr*100)
	fmt.Println("(the tutorial's point: the hierarchy scales to platforms whose")
	fmt.Println(" monolithic chain would be far beyond exact solution)")
	return nil
}

// monolithic builds the exact GSPN: per subsystem a duplex pair, plus one
// global repair team serving one failed unit at a time.
func monolithic() (avail float64, states int, err error) {
	n := spn.New()
	fail := func(s int) string { return fmt.Sprintf("fail%d", s) }
	rep := func(s int) string { return fmt.Sprintf("repair%d", s) }
	up := func(s int) string { return fmt.Sprintf("up%d", s) }
	down := func(s int) string { return fmt.Sprintf("down%d", s) }

	if err := n.Place("team", 1); err != nil {
		return 0, 0, err
	}
	for s := 0; s < nSubsystems; s++ {
		steps := []error{
			n.Place(up(s), 2),
			n.Place(down(s), 0),
		}
		for _, e := range steps {
			if e != nil {
				return 0, 0, e
			}
		}
		upIdx, e := n.PlaceIndex(up(s))
		if e != nil {
			return 0, 0, e
		}
		steps = []error{
			n.TimedFunc(fail(s), func(m spn.Marking) float64 { return lam * float64(m[upIdx]) }),
			n.Input(up(s), fail(s), 1),
			n.Output(fail(s), down(s), 1),
			// Repair seizes the shared team for its duration.
			n.Timed(rep(s), mu),
			n.Input(down(s), rep(s), 1),
			n.Input("team", rep(s), 1),
			n.Output(rep(s), up(s), 1),
			n.Output(rep(s), "team", 1),
		}
		for _, e := range steps {
			if e != nil {
				return 0, 0, e
			}
		}
	}
	tc, err := n.Generate(0)
	if err != nil {
		return 0, 0, err
	}
	upIdxs := make([]int, nSubsystems)
	for s := 0; s < nSubsystems; s++ {
		upIdxs[s], err = n.PlaceIndex(up(s))
		if err != nil {
			return 0, 0, err
		}
	}
	a, err := tc.ProbWhere(func(m spn.Marking) bool {
		for _, ui := range upIdxs {
			if m[ui] == 0 {
				return false
			}
		}
		return true
	})
	if err != nil {
		return 0, 0, err
	}
	return a, tc.NumTangible(), nil
}

// fixedPoint solves the hierarchy: each subsystem's duplex Markov model
// uses an effective repair rate discounted by the probability the team is
// busy elsewhere, iterated to self-consistency.
func fixedPoint() (avail float64, iterations int, err error) {
	sub := hier.FuncModel{
		ModelName: "duplex-subsystem",
		In:        []string{"busyOther"},
		Out:       []string{"A_sub", "busySelf"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			muEff := mu * (1 - in["busyOther"])
			if muEff <= 0 {
				return nil, fmt.Errorf("effective repair rate %g", muEff)
			}
			c := markov.NewCTMC()
			for _, e := range []error{
				c.AddRate("2", "1", 2*lam),
				c.AddRate("1", "0", lam),
				c.AddRate("1", "2", muEff),
				c.AddRate("0", "1", muEff),
			} {
				if e != nil {
					return nil, e
				}
			}
			pi, e := c.SteadyStateMap()
			if e != nil {
				return nil, e
			}
			// Probability this subsystem occupies the repair team: any
			// failed unit present means a repair is in progress.
			busy := pi["1"] + pi["0"]
			return map[string]float64{
				"A_sub":    pi["2"] + pi["1"],
				"busySelf": busy,
			}, nil
		},
	}
	couple := hier.FuncModel{
		ModelName: "repair-contention",
		In:        []string{"busySelf"},
		Out:       []string{"busyOther"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			// Identical subsystems: the team is busy elsewhere with
			// probability ≈ (n-1)·busySelf (small-utilization regime).
			b := float64(nSubsystems-1) * in["busySelf"]
			if b > 0.95 {
				b = 0.95
			}
			return map[string]float64{"busyOther": b}, nil
		},
	}
	system := hier.FuncModel{
		ModelName: "platform",
		In:        []string{"A_sub"},
		Out:       []string{"A_sys"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"A_sys": math.Pow(in["A_sub"], nSubsystems)}, nil
		},
	}
	comp, err := hier.NewComposition(sub, couple, system)
	if err != nil {
		return 0, 0, err
	}
	res, err := comp.Solve(map[string]float64{"busyOther": 0}, hier.Options{Tol: 1e-12})
	if err != nil {
		return 0, 0, err
	}
	return res.Vars["A_sys"], res.Iterations, nil
}
