// Maintenance composes three of the tutorial's threads in one study:
// Markov regenerative processes (deterministic maintenance timers),
// optimization over a design parameter, and epistemic parameter
// uncertainty. A machine ages through a latent degradation stage before
// failing; preventive maintenance runs on a fixed interval τ. The study
// finds the τ minimizing total downtime, then asks how robust that optimum
// is when the degradation rate is only known up to a lognormal error —
// reporting, per candidate τ, the 90% downtime interval and the
// probability that τ is within 10% of the (per-sample) optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/mrgp"
	"repro/internal/uncertainty"
)

const (
	nominalLamD = 0.02 // robust → degraded (latent) rate, per hour
	lamF        = 0.01 // degraded → failed rate
	muRepair    = 0.05 // failure repair: 20 h average
	muMaint     = 2.0  // preventive maintenance: 30 min
)

var candidateTaus = []float64{5, 10, 20, 40, 80, 160, 320}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// downtime returns the total steady-state unavailability for maintenance
// interval tau and degradation rate lamD (clock-resetting MRGP).
func downtime(tau, lamD float64) (float64, error) {
	p := mrgp.New()
	for _, err := range []error{
		p.AddExp("robust", "degraded", lamD),
		p.SetDeterministic("robust", "maint", tau),
		p.AddExp("degraded", "failed", lamF),
		p.SetDeterministic("degraded", "maint", tau),
		p.AddExp("failed", "robust", muRepair),
		p.AddExp("maint", "robust", muMaint),
	} {
		if err != nil {
			return 0, err
		}
	}
	pi, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	return pi["failed"] + pi["maint"], nil
}

func run() error {
	const minutesPerYear = 525960

	fmt.Println("Preventive-maintenance interval optimization under uncertainty")
	fmt.Println()

	// --- nominal optimization -------------------------------------------
	fmt.Printf("%-10s %-14s %s\n", "tau (h)", "unavailability", "downtime (min/yr)")
	bestTau, bestU := 0.0, 1.0
	for _, tau := range candidateTaus {
		u, err := downtime(tau, nominalLamD)
		if err != nil {
			return err
		}
		if u < bestU {
			bestU, bestTau = u, tau
		}
		fmt.Printf("%-10g %-14.6f %9.0f\n", tau, u, u*minutesPerYear)
	}
	noMaint := lamFChainUnavailability()
	fmt.Printf("%-10s %-14.6f %9.0f\n", "none", noMaint, noMaint*minutesPerYear)
	fmt.Printf("\nnominal optimum: tau = %g h (%.0f min/yr vs %.0f min/yr unmaintained)\n\n",
		bestTau, bestU*minutesPerYear, noMaint*minutesPerYear)

	// --- robustness under lamD uncertainty --------------------------------
	lamDist, err := dist.NewLognormalFromMoments(nominalLamD, 0.4)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2026))
	const samples = 400

	fmt.Printf("degradation rate uncertain (lognormal, cv 0.4, n=%d LHS samples):\n\n", samples)
	fmt.Printf("%-10s %-12s %-12s %s\n", "tau (h)", "U p05", "U p95", "P(tau near-optimal)")

	// Draw one shared sample set so candidates are compared on common
	// random numbers.
	draws := make([]float64, 0, samples)
	{
		res, err := uncertainty.Propagate(
			func(p map[string]float64) (float64, error) { return p["lamD"], nil },
			[]uncertainty.Param{{Name: "lamD", Dist: lamDist}},
			uncertainty.Options{Samples: samples, LatinHypercube: true}, rng)
		if err != nil {
			return err
		}
		draws = append(draws, res.Samples...)
	}
	// Per sample, the downtime of every candidate and the best candidate.
	perTau := make(map[float64][]float64, len(candidateTaus))
	nearOptimal := make(map[float64]int, len(candidateTaus))
	for _, lamD := range draws {
		best := 1.0
		us := make(map[float64]float64, len(candidateTaus))
		for _, tau := range candidateTaus {
			u, err := downtime(tau, lamD)
			if err != nil {
				return err
			}
			us[tau] = u
			if u < best {
				best = u
			}
		}
		for _, tau := range candidateTaus {
			perTau[tau] = append(perTau[tau], us[tau])
			if us[tau] <= 1.1*best {
				nearOptimal[tau]++
			}
		}
	}
	for _, tau := range candidateTaus {
		us := perTau[tau]
		sort.Float64s(us)
		p05 := us[int(0.05*float64(len(us)))]
		p95 := us[int(0.95*float64(len(us)))-1]
		fmt.Printf("%-10g %-12.6f %-12.6f %.0f%%\n",
			tau, p05, p95, 100*float64(nearOptimal[tau])/float64(len(draws)))
	}
	fmt.Println()
	fmt.Println("reading: pick the interval with high near-optimality probability,")
	fmt.Println("not the nominal optimizer alone — the tutorial's uncertainty message.")
	return nil
}

// lamFChainUnavailability is the no-maintenance baseline (CTMC-equivalent
// MRGP without timers).
func lamFChainUnavailability() float64 {
	p := mrgp.New()
	_ = p.AddExp("robust", "degraded", nominalLamD)
	_ = p.AddExp("degraded", "failed", lamF)
	_ = p.AddExp("failed", "robust", muRepair)
	pi, err := p.SteadyState()
	if err != nil {
		return 1
	}
	return pi["failed"]
}
