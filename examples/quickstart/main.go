// Quickstart tours the library in four steps: a reliability block diagram,
// a fault tree, a Markov availability model, and a transient solve — the
// four model types every other example composes.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/faulttree"
	"repro/internal/markov"
	"repro/internal/rbd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== 1. Reliability block diagram ==")
	// Two web servers in parallel, in series with a database. Rates are
	// per hour; repair takes 2h on average.
	web1 := &rbd.Component{Name: "web1", Lifetime: dist.MustExponential(1e-3), Repair: dist.MustExponential(0.5)}
	web2 := &rbd.Component{Name: "web2", Lifetime: dist.MustExponential(1e-3), Repair: dist.MustExponential(0.5)}
	db := &rbd.Component{Name: "db", Lifetime: dist.MustExponential(2e-4), Repair: dist.MustExponential(0.25)}
	model, err := rbd.New(rbd.Series(
		rbd.Parallel(rbd.Comp(web1), rbd.Comp(web2)),
		rbd.Comp(db),
	))
	if err != nil {
		return err
	}
	avail, err := model.SteadyStateAvailability()
	if err != nil {
		return err
	}
	mttf, err := model.MTTF()
	if err != nil {
		return err
	}
	fmt.Printf("availability: %.6f (downtime %.1f min/yr)\n", avail, (1-avail)*525960)
	fmt.Printf("MTTF:         %.0f h\n", mttf)
	fmt.Printf("min cut sets: %v\n\n", model.MinimalCutSets())

	fmt.Println("== 2. Fault tree ==")
	pump1 := &faulttree.Event{Name: "pump1", Prob: 0.05}
	pump2 := &faulttree.Event{Name: "pump2", Prob: 0.05}
	valve := &faulttree.Event{Name: "valve", Prob: 0.002}
	tree, err := faulttree.New(faulttree.Or(
		faulttree.Basic(valve),
		faulttree.And(faulttree.Basic(pump1), faulttree.Basic(pump2)),
	))
	if err != nil {
		return err
	}
	top, err := tree.TopStatic()
	if err != nil {
		return err
	}
	fmt.Printf("top-event probability: %.6g\n", top)
	imps, err := tree.Importance()
	if err != nil {
		return err
	}
	fmt.Printf("most important event:  %s (Birnbaum %.4g)\n\n", imps[0].Event, imps[0].Birnbaum)

	fmt.Println("== 3. Markov availability model (shared repair) ==")
	lam, mu := 1e-3, 0.5
	chain := markov.NewCTMC()
	for _, step := range []error{
		chain.AddRate("2up", "1up", 2*lam),
		chain.AddRate("1up", "0up", lam),
		chain.AddRate("1up", "2up", mu),
		chain.AddRate("0up", "1up", mu),
	} {
		if step != nil {
			return step
		}
	}
	pi, err := chain.SteadyStateMap()
	if err != nil {
		return err
	}
	fmt.Printf("steady state: 2up=%.8f 1up=%.8f 0up=%.3g\n", pi["2up"], pi["1up"], pi["0up"])
	fmt.Printf("availability: %.8f\n\n", pi["2up"]+pi["1up"])

	fmt.Println("== 4. Transient analysis (uniformization) ==")
	p0, err := chain.InitialAt("2up")
	if err != nil {
		return err
	}
	for _, t := range []float64{1, 10, 100, 1000} {
		p, err := chain.Transient(t, p0, markov.TransientOptions{})
		if err != nil {
			return err
		}
		a, err := chain.ProbSum(p, "2up", "1up")
		if err != nil {
			return err
		}
		fmt.Printf("A(%6g h) = %.8f\n", t, a)
	}
	return nil
}
