// Bladecenter reproduces the shape of the IBM BladeCenter availability
// study (Smith et al., IBM Systems Journal 2008; one of the tutorial's IBM
// examples): a hierarchical model in which Markov submodels capture each
// subsystem's redundancy and repair policy, and a top-level series
// structure (the system fails if any subsystem fails) combines their
// availabilities. The report gives subsystem availabilities, the system
// availability and downtime, and the downtime ranking that drives design
// decisions.
//
// Rates are representative published magnitudes (MTTFs of 10^4–10^6 h,
// repair of hours), not IBM's proprietary values; the *structure* and the
// resulting ranking shape are what the study demonstrates.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/hier"
	"repro/internal/markov"
)

// duplexAvailability returns the steady-state availability of a duplex
// subsystem with a shared repair facility (rates per hour).
func duplexAvailability(lam, mu float64) (float64, error) {
	c := markov.NewCTMC()
	for _, err := range []error{
		c.AddRate("2", "1", 2*lam),
		c.AddRate("1", "0", lam),
		c.AddRate("1", "2", mu),
		c.AddRate("0", "1", mu),
	} {
		if err != nil {
			return 0, err
		}
	}
	pi, err := c.SteadyStateMap()
	if err != nil {
		return 0, err
	}
	return pi["2"] + pi["1"], nil
}

// simplexAvailability returns availability of a non-redundant subsystem.
func simplexAvailability(lam, mu float64) (float64, error) {
	c := markov.NewCTMC()
	if err := c.AddRate("up", "down", lam); err != nil {
		return 0, err
	}
	if err := c.AddRate("down", "up", mu); err != nil {
		return 0, err
	}
	pi, err := c.SteadyStateMap()
	if err != nil {
		return 0, err
	}
	return pi["up"], nil
}

// nOfMAvailability returns availability of an n-of-m subsystem with
// independent repair per unit (blades), via the library's k-of-n builder.
func nOfMAvailability(n, m int, lam, mu float64) (float64, error) {
	model, err := markov.BuildKOfN(markov.KOfNOptions{
		N: m, K: n, FailureRate: lam, RepairRate: mu,
		Crews: m, FailInDown: true,
	})
	if err != nil {
		return 0, err
	}
	return model.Availability()
}

type subsystem struct {
	name  string
	avail func() (float64, error)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	subsystems := []subsystem{
		{name: "midplane", avail: func() (float64, error) {
			// Passive midplane: very reliable, slow to replace (chassis swap).
			return simplexAvailability(1.0/2.2e6, 1.0/24)
		}},
		{name: "power", avail: func() (float64, error) {
			// 2 power domains, duplex supplies with shared service.
			return duplexAvailability(1.0/6.7e5, 1.0/4)
		}},
		{name: "cooling", avail: func() (float64, error) {
			// Duplex blowers.
			return duplexAvailability(1.0/3.6e5, 1.0/4)
		}},
		{name: "management", avail: func() (float64, error) {
			// Duplex management modules with failover.
			return duplexAvailability(1.0/1.5e5, 1.0/2)
		}},
		{name: "switch", avail: func() (float64, error) {
			// Duplex Ethernet switch modules.
			return duplexAvailability(1.0/2.0e5, 1.0/2)
		}},
		{name: "blades", avail: func() (float64, error) {
			// 14 blades, 13-of-14 needed (one spare), independent repair.
			return nOfMAvailability(13, 14, 1.0/8.8e4, 1.0/2)
		}},
	}

	// Hierarchical composition: each subsystem is a submodel exporting its
	// availability; the top model multiplies them (series logic).
	models := make([]hier.Submodel, 0, len(subsystems)+1)
	varNames := make([]string, 0, len(subsystems))
	for _, s := range subsystems {
		s := s
		varName := "A_" + s.name
		varNames = append(varNames, varName)
		models = append(models, hier.FuncModel{
			ModelName: s.name,
			Out:       []string{varName},
			Fn: func(map[string]float64) (map[string]float64, error) {
				a, err := s.avail()
				if err != nil {
					return nil, err
				}
				return map[string]float64{varName: a}, nil
			},
		})
	}
	models = append(models, hier.FuncModel{
		ModelName: "system",
		In:        varNames,
		Out:       []string{"A_system"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			a := 1.0
			for _, v := range varNames {
				a *= in[v]
			}
			return map[string]float64{"A_system": a}, nil
		},
	})
	comp, err := hier.NewComposition(models...)
	if err != nil {
		return err
	}
	res, err := comp.Solve(nil, hier.Options{})
	if err != nil {
		return err
	}

	const minutesPerYear = 525960
	fmt.Println("IBM BladeCenter-style hierarchical availability model")
	fmt.Println()
	fmt.Printf("%-12s %-14s %s\n", "subsystem", "availability", "downtime (min/yr)")
	type row struct {
		name string
		down float64
	}
	var rows []row
	for _, s := range subsystems {
		a := res.Vars["A_"+s.name]
		d := (1 - a) * minutesPerYear
		rows = append(rows, row{name: s.name, down: d})
		fmt.Printf("%-12s %.11f  %12.6f\n", s.name, a, d)
	}
	aSys := res.Vars["A_system"]
	fmt.Println()
	fmt.Printf("system availability: %.9f\n", aSys)
	fmt.Printf("system downtime:     %.1f min/yr (%.2f nines)\n",
		(1-aSys)*minutesPerYear, nines(aSys))
	sort.Slice(rows, func(i, j int) bool { return rows[i].down > rows[j].down })
	fmt.Println()
	fmt.Println("downtime ranking (largest contributor first):")
	for i, r := range rows {
		fmt.Printf("%d. %-12s %12.6f min/yr\n", i+1, r.name, r.down)
	}
	fmt.Printf("\nsolved in %d hierarchical sweep(s)\n", res.Iterations)
	return nil
}

// nines converts availability to the "number of nines" scale: -log10(1-A).
func nines(a float64) float64 {
	if a >= 1 {
		return math.Inf(1)
	}
	return -math.Log10(1 - a)
}
