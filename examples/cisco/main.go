// Cisco reproduces the shape of the Cisco GSR 12000 router availability
// study (one of the tutorial's Cisco examples): a CTMC of a dual
// route-processor system with hardware failures, software failures,
// imperfect failover coverage, and software rejuvenation, built as a GSPN
// so the state space is generated rather than hand-enumerated. The report
// compares three designs:
//
//  1. simplex (one route processor),
//  2. duplex with imperfect failover coverage,
//  3. duplex + periodic software rejuvenation of the standby (MRGP).
//
// Rates are representative published magnitudes; the ranking and the
// coverage sensitivity are the study's transferable results.
package main

import (
	"fmt"
	"log"

	"repro/internal/markov"
	"repro/internal/mrgp"
	"repro/internal/spn"
)

const (
	lamHW  = 1.0 / 1e5 // hardware failure rate, per hour
	lamSW  = 1.0 / 2e3 // software (aging-related) crash rate
	muHW   = 1.0 / 4   // hardware repair (4 h, field replacement)
	muSW   = 1.0       // software crash recovery (1 h: reboot + state rebuild)
	muFail = 1.0 / 0.5 // failover completion (30 min manual recovery on miss)
	muRej  = 30.0      // planned rejuvenation (2 min, scheduled off-peak)
	cov    = 0.95      // failover coverage
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const minutesPerYear = 525960

	aSimplex, err := simplex()
	if err != nil {
		return err
	}
	aDuplex, err := duplexWithCoverage(cov)
	if err != nil {
		return err
	}
	aDuplexPerfect, err := duplexWithCoverage(1.0)
	if err != nil {
		return err
	}
	uRejuv, err := rejuvenatedUnavailability(168) // weekly rejuvenation
	if err != nil {
		return err
	}

	fmt.Println("Cisco GSR-style route-processor availability study")
	fmt.Println()
	fmt.Printf("%-38s %-12s %s\n", "design", "availability", "downtime (min/yr)")
	print := func(name string, a float64) {
		fmt.Printf("%-38s %.8f   %9.2f\n", name, a, (1-a)*minutesPerYear)
	}
	print("simplex RP", aSimplex)
	print(fmt.Sprintf("duplex RP (coverage %.0f%%)", cov*100), aDuplex)
	print("duplex RP (perfect coverage)", aDuplexPerfect)
	print("simplex + weekly SW rejuvenation", 1-uRejuv)
	fmt.Println()
	fmt.Println("observations (the study's shape):")
	fmt.Printf("- duplexing cuts downtime by %.0fx, but imperfect coverage caps the gain\n",
		(1-aSimplex)/(1-aDuplex))
	fmt.Printf("- closing the last 5%% of coverage is worth another %.1fx\n",
		(1-aDuplex)/(1-aDuplexPerfect))
	return nil
}

// simplex is a single route processor with hardware and software failures.
func simplex() (float64, error) {
	c := markov.NewCTMC()
	for _, err := range []error{
		c.AddRate("up", "hwDown", lamHW),
		c.AddRate("up", "swDown", lamSW),
		c.AddRate("hwDown", "up", muHW),
		c.AddRate("swDown", "up", muSW),
	} {
		if err != nil {
			return 0, err
		}
	}
	pi, err := c.SteadyStateMap()
	if err != nil {
		return 0, err
	}
	return pi["up"], nil
}

// duplexWithCoverage builds the dual-RP model as a GSPN: failures of the
// active RP are detected and failed-over with probability c (immediate
// transitions resolve the coverage branch); uncovered failures require a
// manual recovery before the standby takes over.
func duplexWithCoverage(c float64) (float64, error) {
	n := spn.New()
	type step func() error
	steps := []step{
		func() error { return n.Place("active", 1) },
		func() error { return n.Place("standby", 1) },
		func() error { return n.Place("detect", 0) },
		func() error { return n.Place("covered", 0) },
		func() error { return n.Place("uncovered", 0) },
		func() error { return n.Place("repairQ", 0) },
		// Active fails (hardware or software)…
		func() error { return n.Timed("failActive", lamHW+lamSW) },
		func() error { return n.Input("active", "failActive", 1) },
		func() error { return n.Output("failActive", "detect", 1) },
		// …and the failover either succeeds or not. With perfect coverage
		// the miss branch is omitted entirely (zero-weight immediates are
		// rejected by the net builder).
		func() error { return n.Immediate("hit", c) },
		func() error { return n.Input("detect", "hit", 1) },
		func() error { return n.Output("hit", "covered", 1) },
		func() error {
			if c >= 1 {
				return nil
			}
			if err := n.Immediate("miss", 1-c); err != nil {
				return err
			}
			if err := n.Input("detect", "miss", 1); err != nil {
				return err
			}
			return n.Output("miss", "uncovered", 1)
		},
		// Covered: standby becomes active instantly (weight-1 immediate),
		// failed unit joins the repair queue.
		func() error { return n.Immediate("switchover", 1) },
		func() error { return n.Input("covered", "switchover", 1) },
		func() error { return n.Input("standby", "switchover", 1) },
		func() error { return n.Output("switchover", "active", 1) },
		func() error { return n.Output("switchover", "repairQ", 1) },
		// Uncovered: manual recovery completes the failover.
		func() error { return n.Timed("manualRecover", muFail) },
		func() error { return n.Input("uncovered", "manualRecover", 1) },
		func() error { return n.Input("standby", "manualRecover", 1) },
		func() error { return n.Output("manualRecover", "active", 1) },
		func() error { return n.Output("manualRecover", "repairQ", 1) },
		// Repair restores a unit to standby.
		func() error { return n.Timed("repair", muHW) },
		func() error { return n.Input("repairQ", "repair", 1) },
		func() error { return n.Output("repair", "standby", 1) },
		// Standby may also fail silently (no service impact, needs repair).
		func() error { return n.Timed("failStandby", lamHW) },
		func() error { return n.Input("standby", "failStandby", 1) },
		func() error { return n.Output("failStandby", "repairQ", 1) },
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return 0, err
		}
	}
	tc, err := n.Generate(0)
	if err != nil {
		return 0, err
	}
	ai, err := n.PlaceIndex("active")
	if err != nil {
		return 0, err
	}
	return tc.ProbWhere(func(m spn.Marking) bool { return m[ai] >= 1 })
}

// rejuvenatedUnavailability models simplex software aging with a weekly
// deterministic rejuvenation of the (degrading) software as an MRGP, and
// returns total unavailability (unplanned + planned).
func rejuvenatedUnavailability(tau float64) (float64, error) {
	p := mrgp.New()
	// Aging: robust → degraded → swDown (two-stage lifetime); hardware
	// failures strike in both up phases.
	for _, err := range []error{
		p.AddExp("robust", "degraded", 2*lamSW),
		p.AddExp("degraded", "swDown", 2*lamSW),
		p.AddExp("robust", "hwDown", lamHW),
		p.AddExp("degraded", "hwDown", lamHW),
		p.AddExp("swDown", "robust", muSW),
		p.AddExp("hwDown", "robust", muHW),
		p.AddExp("rejuv", "robust", muRej),
		p.SetDeterministic("robust", "rejuv", tau),
		p.SetDeterministic("degraded", "rejuv", tau),
	} {
		if err != nil {
			return 0, err
		}
	}
	pi, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	return pi["swDown"] + pi["hwDown"] + pi["rejuv"], nil
}
