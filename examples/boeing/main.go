// Boeing reproduces the shape of the tutorial's Boeing 787 story: a
// safety-critical subsystem whose fault tree is too large for exact
// solution gets certified two-sided bounds instead. The real current
// return network tree is export-controlled, so this example builds a
// synthetic wide tree with the same structure class — thousands of minimal
// cut sets with heavily skewed probabilities — and shows the truncation
// trade-off: how many cut sets must be kept before the bound width meets a
// 10^-9 certification budget.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthetic wide system: 120 components; cut sets are all pairs within
	// overlapping windows plus scattered triples — 3,000+ cut sets whose
	// probabilities span six orders of magnitude, as in large avionics
	// trees where a few dominant cuts carry almost all the risk.
	rng := rand.New(rand.NewSource(787))
	nComp := 120
	failP := make([]float64, nComp)
	for i := range failP {
		failP[i] = 1e-5 * (1 + 40*rng.Float64()*rng.Float64())
	}
	var cuts [][]int
	for i := 0; i < nComp; i++ {
		for j := i + 1; j < i+30 && j < nComp; j++ {
			cuts = append(cuts, []int{i, j})
		}
	}
	for i := 0; i+17 < nComp; i += 3 {
		cuts = append(cuts, []int{i, i + 11, i + 17})
	}
	cs := &bounds.CutSystem{Cuts: cuts, FailP: failP}

	fmt.Println("Boeing-787-style bounding study")
	fmt.Printf("components: %d, minimal cut sets: %d\n\n", nComp, len(cuts))

	exact, err := cs.Exact()
	if err != nil {
		return err
	}

	// Certification budget: the bound width must be below 5% of the cheap
	// rare-event screen, i.e. the uncertainty from truncation must be
	// negligible against the risk estimate itself.
	screen, err := cs.RareEvent()
	if err != nil {
		return err
	}
	budget := 0.05 * screen
	fmt.Printf("%-10s %-12s %-12s %-12s %s\n", "kept", "lower", "upper", "width",
		fmt.Sprintf("width <= %.1e?", budget))
	var firstMeeting int
	for _, keep := range []int{10, 30, 100, 300, 1000, 2000, len(cuts)} {
		res, err := cs.TruncatedBounds(keep)
		if err != nil {
			return err
		}
		meets := "no"
		if res.Width() <= budget {
			meets = "yes"
			if firstMeeting == 0 {
				firstMeeting = keep
			}
		}
		fmt.Printf("%-10d %-12.4e %-12.4e %-12.4e %s\n",
			res.Kept, res.Lower, res.Upper, res.Width(), meets)
	}
	fmt.Println()
	fmt.Printf("exact top probability (oracle): %.6e\n", exact)
	if firstMeeting > 0 {
		fmt.Printf("certification budget met keeping %d of %d cut sets (%.0f%%)\n",
			firstMeeting, len(cuts), 100*float64(firstMeeting)/float64(len(cuts)))
	} else {
		fmt.Println("certification budget met only with the full cut set")
	}

	// Cheap one-sided screens for comparison.
	ep, err := cs.EsaryProschanUpper()
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("rare-event upper bound:      %.6e (gap %.2e)\n", screen, screen-exact)
	fmt.Printf("Esary-Proschan upper bound:  %.6e (gap %.2e)\n", ep, ep-exact)
	return nil
}
