package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// mustServeMux builds the serve routes or fails the test; the only
// error path is a broken embedded dashboard template.
func mustServeMux(t *testing.T, cfg serveConfig) *http.ServeMux {
	t.Helper()
	mux, err := newServeMux(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mux
}

// postModel POSTs a bundled model file at the handler and returns the
// recorder.
func postModel(t *testing.T, h http.Handler, path, query string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/solve"+query, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// sampleRE scrubs the numeric value of an exposition sample line so the
// golden locks schema (families, label sets, bucket bounds) rather than
// timing-dependent numbers.
var sampleRE = regexp.MustCompile(`(?m)^([^#].*) \S+$`)

func scrubSamples(s string) string {
	return sampleRE.ReplaceAllString(s, "$1 V")
}

// TestServeSolveAndMetricsGolden is the acceptance lock for relcli
// serve: POST /solve answers for models/repairfarm.json (pinned SOR) and
// models/loadbalancer.json (fallback chain), and /metrics then exposes
// the request counter, the per-solver wall-time histograms, and the
// guard/fallback counters. The scrubbed exposition output is golden.
func TestServeSolveAndMetricsGolden(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), MaxInflight: 2})

	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	if w.Code != http.StatusOK {
		t.Fatalf("POST /solve repairfarm: status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Model   string `json:"model"`
		Results []struct {
			Measure string  `json:"measure"`
			Value   float64 `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("solve response is not JSON: %v\n%s", err, w.Body.String())
	}
	avail := -1.0
	for _, r := range resp.Results {
		if r.Measure == "availability" {
			avail = r.Value
		}
	}
	if avail < 0.9 || avail > 1 {
		t.Errorf("repairfarm availability = %g, want in (0.9, 1]", avail)
	}

	w = postModel(t, mux, filepath.Join("..", "..", "models", "loadbalancer.json"), "")
	if w.Code != http.StatusOK {
		t.Fatalf("POST /solve loadbalancer: status %d: %s", w.Code, w.Body.String())
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mw := httptest.NewRecorder()
	mux.ServeHTTP(mw, req)
	if mw.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", mw.Code)
	}
	if ct := mw.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	got := scrubSamples(mw.Body.String())

	golden := filepath.Join("testdata", "serve_metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("/metrics drifted from %s; rerun with -update if intended.\ngot:\n%s", golden, got)
	}

	// The acceptance criteria spelled out, independent of the golden file.
	for _, want := range []string{
		`relscope_solve_requests_total{code="200"} `,
		`relscope_solver_wall_seconds_bucket{solver="sor",model="machine repair farm (SOR steady state)",le="+Inf"} `,
		`relscope_chain_attempts_total{chain="steadystate",method="sor",class="none",model="two-node load balancer (chain solver)"} `,
		`relscope_chain_decided_total{chain="steadystate",winner="sor",model="two-node load balancer (chain solver)"} `,
		"# TYPE relscope_guard_outcomes_total counter",
		"# TYPE relscope_rail_warnings_total counter",
	} {
		if !strings.Contains(mw.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeTraceQuery checks ?trace=1 returns the request-scoped span
// tree alongside the results.
func TestServeTraceQuery(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})
	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "?trace=1")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Trace *struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || len(resp.Trace.Children) == 0 || resp.Trace.Children[0].Name != "modelio.solve" {
		t.Errorf("trace missing or malformed: %s", w.Body.String())
	}
}

func TestServeRejectsBadInput(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})

	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader("{not json"))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", w.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(`{"type":"ctmc","ctmc":{"transitions":[{"from":"a","to":"b","rate":1}],"measures":["no-such-measure"]}}`))
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad measure: status %d, want 422: %s", w.Code, w.Body.String())
	}

	req = httptest.NewRequest(http.MethodGet, "/solve", nil)
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d, want 405", w.Code)
	}
}

// TestServeTimeout pins the guard plumbing: a sub-microsecond solve
// budget must surface as 504 with the deadline error in the body.
func TestServeTimeout(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), SolveTimeout: time.Nanosecond})
	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "deadline") {
		t.Errorf("body does not name the deadline: %s", w.Body.String())
	}
}

// TestServeHealthz checks /healthz reports liveness as JSON with the
// operational context: uptime, in-flight solves, trace-store occupancy.
func TestServeHealthz(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), TraceStoreSize: 4})
	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	if w.Code != http.StatusOK {
		t.Fatalf("warm-up solve: status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("healthz Content-Type %q", ct)
	}
	if cc := w.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("healthz Cache-Control %q, want no-store", cc)
	}
	var h struct {
		Status   string  `json:"status"`
		UptimeS  float64 `json:"uptime_s"`
		InFlight int     `json:"in_flight"`
		Store    struct {
			Len int `json:"len"`
			Cap int `json:"cap"`
		} `json:"trace_store"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, w.Body.String())
	}
	if h.Status != "ok" || h.UptimeS < 0 || h.InFlight != 0 {
		t.Errorf("healthz body: %+v", h)
	}
	if h.Store.Len != 1 || h.Store.Cap != 4 {
		t.Errorf("trace_store occupancy = %+v, want 1/4 after one solve", h.Store)
	}
}

// TestServeStructuredLogs checks the slog bridge rides along on solve
// requests: one span event per solver span plus the request summary.
func TestServeStructuredLogs(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := newSlogLogger("json", "info", &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), Logger: logger})
	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"solve request"`) {
		t.Errorf("missing request event:\n%s", logs)
	}
	if !strings.Contains(logs, `"span":"modelio.solve"`) || !strings.Contains(logs, `"solver":"sor"`) {
		t.Errorf("missing span events:\n%s", logs)
	}
}

// TestServeAnalyze: POST /analyze is the serve-side preflight — it
// returns the structural report without solving, and answers 422 when
// the document has error-severity findings.
func TestServeAnalyze(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), MaxInflight: 2})

	body, err := os.ReadFile(filepath.Join("..", "..", "models", "absorbing.json"))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(body))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /analyze absorbing: status %d: %s", w.Code, w.Body.String())
	}
	var rep analyzeFileReport
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Report == nil || rep.Report.States != 3 {
		t.Fatalf("missing or wrong structural report: %s", w.Body.String())
	}
	if rep.Report.Hint.Reduce != "restrict-recurrent" {
		t.Fatalf("hint.reduce = %q, want restrict-recurrent", rep.Report.Hint.Reduce)
	}

	broken, err := os.ReadFile(filepath.Join("..", "..", "models", "broken_rowsum.json"))
	if err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(broken))
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("POST /analyze broken model: status %d, want 422", w.Code)
	}
}
