package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/modelio"
)

// FuzzSolveBody fuzzes the /solve request-body decoder through the real
// handler stack. Whatever bytes arrive, the server must answer a
// well-formed JSON solveResponse with a typed code; malformed or
// oversized documents are 400s, never 500s. The corpus starts from the
// chaos-drill document mix so mutation explores realistic specs.
func FuzzSolveBody(f *testing.F) {
	for _, d := range chaosDocs {
		f.Add([]byte(d.doc))
	}
	f.Add([]byte(``))
	f.Add([]byte(`{"type":`))
	f.Add([]byte(`{"type":"ctmc","ctmc":null}`))
	f.Add(bytes.Repeat([]byte("x"), 8192))

	failpoint.Reset()
	const maxBody = 4096
	_, mux, err := newSolveServer(serveConfig{
		Registry:     metrics.NewRegistry(),
		MaxInflight:  1,
		MaxBody:      maxBody,
		SolveTimeout: 2 * time.Second,
		UI:           false,
	})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(mux)
	f.Cleanup(ts.Close)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("request did not terminate cleanly: %v", err)
		}
		body, rerr := io.ReadAll(res.Body)
		res.Body.Close()
		if rerr != nil {
			t.Fatalf("response body unreadable: %v", rerr)
		}
		var resp solveResponse
		if jerr := json.Unmarshal(body, &resp); jerr != nil {
			t.Fatalf("status %d body is not a solveResponse: %v\n%s", res.StatusCode, jerr, body)
		}

		// The decoder contract: a body the model parser rejects, or one
		// over the size limit, is the client's fault — 400 with a typed
		// code, never a 5xx.
		_, perr := modelio.Parse(bytes.NewReader(data))
		if perr != nil || int64(len(data)) > maxBody {
			if res.StatusCode != http.StatusBadRequest {
				t.Fatalf("undecodable body answered %d (code %q, error %q), want 400",
					res.StatusCode, resp.Code, resp.Error)
			}
		}
		if !allowedChaosStatus[res.StatusCode] {
			t.Fatalf("status %d outside the typed-outcome set (code %q, error %q)",
				res.StatusCode, resp.Code, resp.Error)
		}
		if res.StatusCode != http.StatusOK && resp.Code == "" {
			t.Errorf("status %d without a typed code: %q", res.StatusCode, resp.Error)
		}
		for _, r := range resp.Results {
			if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
				t.Errorf("measure %q returned non-finite value %v", r.Measure, r.Value)
			}
		}
	})
}
