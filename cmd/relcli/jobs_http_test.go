package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/metrics"
)

// jobDoc is a small sweep job over the two-state pair model: lognormal
// uncertainty on the failure rate, 200 samples in 4 shards.
const jobDoc = `{
  "model": {"type":"ctmc","name":"pair","ctmc":{"transitions":[
    {"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],
    "upStates":["up"],"measures":["availability"]}},
  "measure": "availability",
  "params": [{"name":"lambda","dist":{"kind":"lognormal","mu":-4.6,"sigma":0.3},"from":"up","to":"down"}],
  "samples": 200,
  "shard_size": 50,
  "seed": 7
}`

// jobRequest fires one request at the mux and decodes the jobResponse.
func jobRequest(t *testing.T, mux *http.ServeMux, method, path, body string, hdr map[string]string) (*httptest.ResponseRecorder, jobResponse) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	var resp jobResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s %s: response is not JSON: %v\n%s", method, path, err, w.Body.String())
	}
	return w, resp
}

// waitJobDone polls GET /jobs/{id} until the job leaves the running
// state, mirroring how an HTTP client would.
func waitJobDone(t *testing.T, mux *http.ServeMux, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, resp := jobRequest(t, mux, http.MethodGet, "/jobs/"+id, "", nil)
		if resp.Job != nil && resp.Job.State != jobs.StateRunning {
			return resp
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 30s", id)
	return jobResponse{}
}

// TestServeJobLifecycle drives the full happy path over HTTP: submit,
// poll to completion, list, and verify the folded result is present.
func TestServeJobLifecycle(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), UI: false})

	w, resp := jobRequest(t, mux, http.MethodPost, "/jobs", jobDoc, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("POST /jobs: status %d: %s", w.Code, w.Body.String())
	}
	if resp.Job == nil || resp.Job.ID == "" {
		t.Fatalf("submit reply carries no job: %s", w.Body.String())
	}
	if loc := w.Header().Get("Location"); loc != "/jobs/"+resp.Job.ID {
		t.Fatalf("Location %q, want /jobs/%s", loc, resp.Job.ID)
	}
	if resp.Job.Shards != 4 {
		t.Fatalf("shards %d, want 4", resp.Job.Shards)
	}

	final := waitJobDone(t, mux, resp.Job.ID)
	if final.Job.State != jobs.StateDone {
		t.Fatalf("state %s (%s), want done", final.Job.State, final.Job.Error)
	}
	if final.Job.Result == nil || final.Job.Result.N != 200 {
		t.Fatalf("result %+v, want N=200", final.Job.Result)
	}

	_, list := jobRequest(t, mux, http.MethodGet, "/jobs", "", nil)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != resp.Job.ID {
		t.Fatalf("list %+v, want the one submitted job", list.Jobs)
	}
}

// TestServeJobIdempotency pins the Idempotency-Key contract: same key →
// same job with 200, no duplicate started.
func TestServeJobIdempotency(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), UI: false})
	hdr := map[string]string{"Idempotency-Key": "sweep-42"}

	w1, r1 := jobRequest(t, mux, http.MethodPost, "/jobs", jobDoc, hdr)
	if w1.Code != http.StatusCreated {
		t.Fatalf("first POST: status %d", w1.Code)
	}
	w2, r2 := jobRequest(t, mux, http.MethodPost, "/jobs", jobDoc, hdr)
	if w2.Code != http.StatusOK {
		t.Fatalf("replayed POST: status %d, want 200", w2.Code)
	}
	if r1.Job.ID != r2.Job.ID {
		t.Fatalf("replay created a new job: %s vs %s", r1.Job.ID, r2.Job.ID)
	}
	_, list := jobRequest(t, mux, http.MethodGet, "/jobs", "", nil)
	if len(list.Jobs) != 1 {
		t.Fatalf("%d jobs exist after replayed submit, want 1", len(list.Jobs))
	}
}

// TestServeJobErrors pins the HTTP error taxonomy of the /jobs routes.
func TestServeJobErrors(t *testing.T) {
	s, mux, err := newSolveServer(serveConfig{Registry: metrics.NewRegistry(), UI: false})
	if err != nil {
		t.Fatal(err)
	}

	w, resp := jobRequest(t, mux, http.MethodPost, "/jobs", `{"measure":"availability"}`, nil)
	if w.Code != http.StatusBadRequest || resp.Code != "bad-spec" {
		t.Fatalf("specless submit: %d/%s, want 400/bad-spec", w.Code, resp.Code)
	}
	w, resp = jobRequest(t, mux, http.MethodGet, "/jobs/j999", "", nil)
	if w.Code != http.StatusNotFound || resp.Code != "unknown-job" {
		t.Fatalf("unknown get: %d/%s, want 404/unknown-job", w.Code, resp.Code)
	}
	w, resp = jobRequest(t, mux, http.MethodDelete, "/jobs/j999", "", nil)
	if w.Code != http.StatusNotFound || resp.Code != "unknown-job" {
		t.Fatalf("unknown delete: %d/%s, want 404/unknown-job", w.Code, resp.Code)
	}

	// A finished job refuses a second cancel with 409.
	w, sub := jobRequest(t, mux, http.MethodPost, "/jobs", jobDoc, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("submit: status %d", w.Code)
	}
	waitJobDone(t, mux, sub.Job.ID)
	w, resp = jobRequest(t, mux, http.MethodDelete, "/jobs/"+sub.Job.ID, "", nil)
	if w.Code != http.StatusConflict || resp.Code != "terminal" {
		t.Fatalf("terminal delete: %d/%s, want 409/terminal", w.Code, resp.Code)
	}

	// A draining server refuses submissions with 503 before reading the body.
	s.draining.Store(true)
	w, resp = jobRequest(t, mux, http.MethodPost, "/jobs", jobDoc, nil)
	if w.Code != http.StatusServiceUnavailable || resp.Code != "draining" {
		t.Fatalf("draining submit: %d/%s, want 503/draining", w.Code, resp.Code)
	}
}

// TestServeJobCancel cancels a running job over HTTP and checks the
// terminal snapshot comes back canceled.
func TestServeJobCancel(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), UI: false})
	big := strings.Replace(jobDoc, `"samples": 200`, `"samples": 100000`, 1)
	w, sub := jobRequest(t, mux, http.MethodPost, "/jobs", big, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body.String())
	}
	w, resp := jobRequest(t, mux, http.MethodDelete, "/jobs/"+sub.Job.ID, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", w.Code, w.Body.String())
	}
	if resp.Job.State != jobs.StateCanceled {
		t.Fatalf("state %s, want canceled", resp.Job.State)
	}
}

// TestServeJobRecoverAcrossServers is the HTTP-level durability check: a
// server with a jobs dir is killed mid-job and a second server over the
// same dir finishes it with the exact result an uninterrupted run gets.
func TestServeJobRecoverAcrossServers(t *testing.T) {
	dir := t.TempDir()

	// Reference: uninterrupted run of the same document, in memory.
	refMux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), UI: false})
	_, refSub := jobRequest(t, refMux, http.MethodPost, "/jobs", jobDoc, nil)
	ref := waitJobDone(t, refMux, refSub.Job.ID)
	if ref.Job.State != jobs.StateDone {
		t.Fatalf("reference run: %s (%s)", ref.Job.State, ref.Job.Error)
	}

	// Victim: durable server, killed immediately after submission.
	victim, victimMux, err := newSolveServer(serveConfig{
		Registry: metrics.NewRegistry(), UI: false, JobsDir: dir, JobWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, sub := jobRequest(t, victimMux, http.MethodPost, "/jobs", jobDoc, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("victim submit: status %d", w.Code)
	}
	victim.jobs.Abort()

	// Survivor: fresh server over the same dir resumes and finishes.
	survivor, survivorMux, err := newSolveServer(serveConfig{
		Registry: metrics.NewRegistry(), UI: false, JobsDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if survivor.jobsResumed != 1 {
		t.Fatalf("survivor resumed %d jobs, want 1", survivor.jobsResumed)
	}
	final := waitJobDone(t, survivorMux, sub.Job.ID)
	if final.Job.State != jobs.StateDone {
		t.Fatalf("resumed job: %s (%s)", final.Job.State, final.Job.Error)
	}
	if !final.Job.Resumed {
		t.Fatal("resumed job not flagged as resumed")
	}
	got, _ := json.Marshal(final.Job.Result)
	want, _ := json.Marshal(ref.Job.Result)
	if string(got) != string(want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\n%s", got, want)
	}
}
