package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/guard"
)

// TestStiffChainTraceJSON is the structural-hint acceptance test: the
// bundled stiff model selects solver "chain", and the static analyzer
// detects the stiffness up front, so the -trace-json document must show
// the recorded hint, GTH attempted first, and no wasted SOR attempt.
func TestStiffChainTraceJSON(t *testing.T) {
	model := filepath.Join("..", "..", "models", "stiff.json")
	var out strings.Builder
	if err := run([]string{"solve", "-trace-json", model}, nil, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Measure string  `json:"measure"`
			Value   float64 `json:"value"`
		} `json:"results"`
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("decoding -trace-json output: %v", err)
	}
	if len(doc.Results) == 0 {
		t.Fatal("no results in chain-solved document")
	}
	trace := string(doc.Trace)
	for _, want := range []string{
		`"attempt:gth"`, `"winner": "gth"`,
		`"struct_prefer": "gth"`, `"struct_hint"`,
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	if strings.Contains(trace, `"attempt:sor"`) {
		t.Error("stiff chain still attempted SOR before GTH despite the structural hint")
	}
	var avail float64
	for _, r := range doc.Results {
		if r.Measure == "availability" {
			avail = r.Value
		}
	}
	if avail <= 0.99 || avail > 1 {
		t.Errorf("chain-solved availability = %g, want in (0.99, 1]", avail)
	}
}

// bigChainModel writes an n-state birth–death CTMC whose SOR solve runs
// long enough for a millisecond deadline to land mid-iteration.
func bigChainModel(t *testing.T, n int) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"type":"ctmc","name":"big chain","ctmc":{"transitions":[`)
	for i := 0; i < n-1; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"from":"s%d","to":"s%d","rate":1.0},{"from":"s%d","to":"s%d","rate":2.0}`,
			i, i+1, i+1, i)
	}
	sb.WriteString(`],"measures":["steadystate"],"solver":"sor","solverTol":1e-30}}`)
	path := filepath.Join(t.TempDir(), "big.json")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSolveTimeoutDeadline is the cancellation acceptance test: a solve
// that cannot finish inside -timeout must come back as guard.ErrDeadline,
// not hang and not panic.
func TestSolveTimeoutDeadline(t *testing.T) {
	model := bigChainModel(t, 2000)
	var out strings.Builder
	err := run([]string{"solve", "-timeout", "1ms", model}, nil, &out)
	if err == nil {
		t.Fatal("expected a deadline error, got success")
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("error %v (type %T) does not match guard.ErrDeadline", err, err)
	}
	var ierr *guard.InterruptError
	if !errors.As(err, &ierr) {
		t.Fatalf("error %v does not unwrap to *guard.InterruptError", err)
	}
	if ierr.Op == "" {
		t.Error("InterruptError carries no operation label")
	}
}

// TestSolveRailsStrictFlag locks the -rails plumbing: the bundled
// broken_rowsum model is structurally fine for solving but lint-dirty, so
// it solves under the default rails; an unknown strictness must be
// rejected before any solver runs.
func TestSolveRailsStrictFlag(t *testing.T) {
	model := filepath.Join("..", "..", "models", "repairfarm.json")
	var out strings.Builder
	if err := run([]string{"solve", "-rails", "strict", model}, nil, &out); err != nil {
		t.Fatalf("strict rails on a healthy model: %v", err)
	}
	out.Reset()
	err := run([]string{"solve", "-rails", "bogus", model}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("expected unknown-strictness error naming %q, got %v", "bogus", err)
	}
}
