package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// wallRE and wallMSRE scrub the only nondeterministic fields of a trace
// document: wall-clock durations in both units.
var (
	wallRE   = regexp.MustCompile(`"wall_ns": \d+`)
	wallMSRE = regexp.MustCompile(`"wall_ms": [0-9.e+-]+`)
)

func scrubWall(s string) string {
	s = wallRE.ReplaceAllString(s, `"wall_ns": 0`)
	return wallMSRE.ReplaceAllString(s, `"wall_ms": 0`)
}

// TestSolveTraceJSONGolden locks the -trace-json document shape for a
// bundled model that forces the SOR path, so the trace carries
// per-iteration residuals. Wall times are scrubbed; everything else —
// span nesting, attribute keys, residual values — must be byte-stable.
func TestSolveTraceJSONGolden(t *testing.T) {
	model := filepath.Join("..", "..", "models", "repairfarm.json")
	var out strings.Builder
	if err := run([]string{"solve", "-trace-json", model}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := scrubWall(out.String())

	golden := filepath.Join("testdata", "repairfarm_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("trace JSON drifted from %s; rerun with -update if intended.\ngot:\n%s", golden, got)
	}
}

// TestSolveTraceJSONIsValid decodes the emitted document and asserts the
// structural acceptance criteria: a nested span tree reaching the
// iterative solver, with monotone-ish residuals below tolerance.
func TestSolveTraceJSONIsValid(t *testing.T) {
	model := filepath.Join("..", "..", "models", "repairfarm.json")
	var out strings.Builder
	if err := run([]string{"solve", "-trace-json", model}, nil, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Measure string `json:"measure"`
		} `json:"results"`
		Trace struct {
			Name     string `json:"name"`
			Children []json.RawMessage
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("trace-json output is not valid JSON: %v", err)
	}
	if len(doc.Results) != 2 {
		t.Errorf("results = %d, want 2", len(doc.Results))
	}
	if len(doc.Trace.Children) == 0 {
		t.Fatal("trace has no child spans")
	}
	// Walk the raw tree for a span with iters.
	var hasIters func(raw json.RawMessage) bool
	hasIters = func(raw json.RawMessage) bool {
		var sp struct {
			Iters []struct {
				N        int     `json:"n"`
				Residual float64 `json:"residual"`
			} `json:"iters"`
			Children []json.RawMessage `json:"children"`
		}
		if err := json.Unmarshal(raw, &sp); err != nil {
			t.Fatal(err)
		}
		if len(sp.Iters) > 0 {
			return true
		}
		for _, c := range sp.Children {
			if hasIters(c) {
				return true
			}
		}
		return false
	}
	found := false
	for _, c := range doc.Trace.Children {
		if hasIters(c) {
			found = true
		}
	}
	if !found {
		t.Error("no span in the trace carries per-iteration residuals")
	}
}

// TestSolveTraceTextAndMetrics exercises the stderr-bound flags through
// the captured stderr writer.
func TestSolveTraceTextAndMetrics(t *testing.T) {
	model := filepath.Join("..", "..", "models", "repairfarm.json")
	var errBuf strings.Builder
	old := stderr
	stderr = &errBuf
	defer func() { stderr = old }()

	var out strings.Builder
	if err := run([]string{"solve", "-trace", "-metrics", model}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model: machine repair farm") {
		t.Errorf("stdout lost the report: %q", out.String())
	}
	diag := errBuf.String()
	if !strings.Contains(diag, "linalg.sor") {
		t.Errorf("text trace missing solver span:\n%s", diag)
	}
	if !strings.Contains(diag, "solver=sor") {
		t.Errorf("metrics line missing dominant solver:\n%s", diag)
	}
}
