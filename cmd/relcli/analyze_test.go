package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reducibleDoc is an inline chain with two recurrent classes — the
// reducible case of the analyze acceptance matrix (the bundled fixtures
// cover absorbing, stiff, and lumpable).
const reducibleDoc = `{
  "type": "ctmc",
  "name": "two isolated clusters",
  "ctmc": {
    "transitions": [
      {"from": "start", "to": "a", "rate": 1.0},
      {"from": "start", "to": "b", "rate": 1.0},
      {"from": "a", "to": "a2", "rate": 1.0},
      {"from": "a2", "to": "a", "rate": 1.0},
      {"from": "b", "to": "b2", "rate": 1.0},
      {"from": "b2", "to": "b", "rate": 1.0}
    ],
    "measures": ["steadystate"]
  }
}`

// TestAnalyzeJSONGolden locks the `analyze -json` StructReport document
// for the structural fixture matrix: absorbing, lumpable, stiff, and
// reducible chains. Models are fed over stdin so the golden "file" field
// stays path-independent.
func TestAnalyzeJSONGolden(t *testing.T) {
	cases := []struct {
		name    string
		model   string // path, or "" to use doc
		doc     string
		wantErr bool // error-severity findings make analyze exit nonzero
	}{
		{name: "absorbing", model: filepath.Join("..", "..", "models", "absorbing.json")},
		{name: "lumpable", model: filepath.Join("..", "..", "models", "lumpable.json")},
		{name: "stiff", model: filepath.Join("..", "..", "models", "stiff.json")},
		// Two closed classes under a steadystate measure is CT006, an
		// error: the golden locks the report, the error is expected.
		{name: "reducible", doc: reducibleDoc, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := tc.doc
			if tc.model != "" {
				raw, err := os.ReadFile(tc.model)
				if err != nil {
					t.Fatal(err)
				}
				doc = string(raw)
			}
			var out strings.Builder
			err := run([]string{"analyze", "-json"}, strings.NewReader(doc), &out)
			if (err != nil) != tc.wantErr {
				t.Fatalf("analyze err = %v, wantErr %v", err, tc.wantErr)
			}
			golden := filepath.Join("testdata", "analyze_"+tc.name+".golden")
			if *updateGolden {
				if werr := os.WriteFile(golden, []byte(out.String()), 0o644); werr != nil {
					t.Fatal(werr)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("analyze JSON drifted from %s; rerun with -update if intended.\ngot:\n%s", golden, out.String())
			}
		})
	}
}

// TestAnalyzeErrorsExitNonzero: error-severity findings must fail the
// subcommand (the check.sh gate relies on this).
func TestAnalyzeErrorsExitNonzero(t *testing.T) {
	model := filepath.Join("..", "..", "models", "broken_rowsum.json")
	raw, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"analyze"}, bytes.NewReader(raw), &out); err == nil {
		t.Fatalf("broken model analyzed clean:\n%s", out.String())
	}
}

// TestAnalyzeSkipsNonCTMC: non-ctmc documents are skipped, not errors.
func TestAnalyzeSkipsNonCTMC(t *testing.T) {
	model := filepath.Join("..", "..", "models", "bridge.json")
	raw, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"analyze", "-json"}, bytes.NewReader(raw), &out); err != nil {
		t.Fatal(err)
	}
	var reports []analyzeFileReport
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Skipped == "" || reports[0].Report != nil {
		t.Fatalf("non-ctmc document not skipped: %+v", reports)
	}
}

// TestAnalyzeBundledModelsClean runs analyze over every bundled model
// except the deliberately broken ones — the same gate scripts/check.sh
// applies in CI.
func TestAnalyzeBundledModelsClean(t *testing.T) {
	dir := filepath.Join("..", "..", "models")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "broken_") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	var out strings.Builder
	if err := run(append([]string{"analyze"}, files...), nil, &out); err != nil {
		t.Fatalf("bundled models failed analyze: %v\n%s", err, out.String())
	}
}

// TestLintOutputSortedByCodeThenPath locks the deterministic ordering
// contract of the lint subcommand: diagnostics come out sorted by code,
// then path, in both text and JSON modes.
func TestLintOutputSortedByCodeThenPath(t *testing.T) {
	// A document tripping several codes at once: a bad rate (CT001), a
	// self-loop (CT002), a duplicate pair (CT003), and an unknown up
	// state (CT004).
	doc := `{
	  "type": "ctmc",
	  "ctmc": {
	    "transitions": [
	      {"from": "b", "to": "c", "rate": 1.0},
	      {"from": "b", "to": "c", "rate": 2.0},
	      {"from": "a", "to": "a", "rate": 1.0},
	      {"from": "a", "to": "b", "rate": -1}
	    ],
	    "upStates": ["nosuch"],
	    "measures": ["steadystate"]
	  }
	}`
	var out strings.Builder
	_ = run([]string{"lint", "-json"}, strings.NewReader(doc), &out)
	var reports []lintFileReport
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || len(reports[0].Diagnostics) < 3 {
		t.Fatalf("unexpected lint output: %+v", reports)
	}
	ds := reports[0].Diagnostics
	for i := 1; i < len(ds); i++ {
		prev, cur := ds[i-1], ds[i]
		if prev.Code > cur.Code || (prev.Code == cur.Code && prev.Path > cur.Path) {
			t.Fatalf("diagnostics not sorted by (code, path): %s %s before %s %s",
				prev.Code, prev.Path, cur.Code, cur.Path)
		}
	}

	// The text mode prints in the same order as JSON.
	var text strings.Builder
	_ = run([]string{"lint"}, strings.NewReader(doc), &text)
	lines := strings.Split(strings.TrimSpace(text.String()), "\n")
	if len(lines) != len(ds) {
		t.Fatalf("text mode printed %d lines for %d diagnostics", len(lines), len(ds))
	}
	for i, d := range ds {
		if !strings.Contains(lines[i], d.Code) {
			t.Fatalf("text line %d = %q, want code %s", i, lines[i], d.Code)
		}
	}
}
