package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLintCleanBundledModels(t *testing.T) {
	dir := filepath.Join("..", "..", "models")
	for _, name := range []string{"bridge.json", "duplex.json", "mm1k.json", "pumptrain.json", "webtier.json"} {
		var out strings.Builder
		if err := run([]string{"lint", filepath.Join(dir, name)}, nil, &out); err != nil {
			t.Errorf("%s: lint failed: %v\n%s", name, err, out.String())
		}
	}
}

func TestLintBrokenFixture(t *testing.T) {
	path := filepath.Join("..", "..", "models", "broken_rowsum.json")
	var out strings.Builder
	err := run([]string{"lint", path}, nil, &out)
	if err == nil {
		t.Fatalf("broken fixture passed lint:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{
		"CT001", // negative rate
		"CT004", // upStates references undeclared "ghost"
		"CT005", // "limbo" unreachable from initial
		"broken_rowsum.json",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("lint output missing %q:\n%s", want, got)
		}
	}
}

func TestLintJSONOutput(t *testing.T) {
	path := filepath.Join("..", "..", "models", "broken_rowsum.json")
	var out strings.Builder
	if err := run([]string{"lint", "-json", path}, nil, &out); err == nil {
		t.Fatal("broken fixture passed lint")
	}
	got := out.String()
	if !strings.Contains(got, `"code": "CT001"`) || !strings.Contains(got, `"path": "ctmc.transitions[0].rate"`) {
		t.Errorf("json lint output missing structured diagnostic:\n%s", got)
	}
}

func TestLintFromStdin(t *testing.T) {
	doc := `{"type": "petri"}`
	var out strings.Builder
	if err := run([]string{"lint"}, strings.NewReader(doc), &out); err == nil {
		t.Fatal("unknown model type passed lint")
	}
	if !strings.Contains(out.String(), "SPEC002") {
		t.Errorf("expected SPEC002 in output:\n%s", out.String())
	}
}

func TestLintCleanStdinReportsClean(t *testing.T) {
	doc := `{"type":"faulttree","faulttree":{
	  "events":[{"name":"a","prob":0.5}],
	  "top":{"event":"a"},"measures":["top"]}}`
	var out strings.Builder
	if err := run([]string{"lint"}, strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("expected clean report, got:\n%s", out.String())
	}
}

func TestPreflightFlag(t *testing.T) {
	path := filepath.Join("..", "..", "models", "broken_rowsum.json")
	err := run([]string{"-preflight", "-model", path}, nil, &strings.Builder{})
	if err == nil {
		t.Fatal("preflight solved a broken model")
	}
	if !strings.Contains(err.Error(), "CT001") {
		t.Errorf("preflight error should carry diagnostics: %v", err)
	}

	// Without preflight, the same model reaches the solver and fails with
	// a plain (non-lint) error from the rate validation.
	err = run([]string{"-model", path}, nil, &strings.Builder{})
	if err == nil {
		t.Fatal("solver accepted a negative rate")
	}
	if strings.Contains(err.Error(), "CT001") {
		t.Errorf("non-preflight path should not produce lint codes: %v", err)
	}

	// A clean model still solves with preflight on.
	var out strings.Builder
	if err := run([]string{"-preflight", "-model", filepath.Join("..", "..", "models", "duplex.json")}, nil, &out); err != nil {
		t.Fatalf("preflight blocked a clean model: %v", err)
	}
	if !strings.Contains(out.String(), "availability") {
		t.Errorf("missing results:\n%s", out.String())
	}
}
