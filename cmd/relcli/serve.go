package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/modelio"
	"repro/internal/obs"
	"repro/internal/reldash"
)

// maxSolveBody bounds the accepted model-document size; anything larger
// is a hostile or mistaken upload, not a reliability model.
const maxSolveBody = 8 << 20

// serveConfig wires a solve service together; split from the flag
// parsing so tests can build handlers directly.
type serveConfig struct {
	// Registry receives request and solver metrics and backs /metrics.
	Registry *metrics.Registry
	// Logger receives structured request and solve events (nil disables).
	Logger *slog.Logger
	// MaxInflight bounds concurrent solves; excess requests get 503.
	MaxInflight int
	// SolveTimeout bounds each solve (0 disables).
	SolveTimeout time.Duration
	// Rails and Preflight mirror the solve-subcommand flags.
	Rails     guard.Strictness
	Preflight bool
	// UI mounts the reldash dashboard at /ui with its /api/* routes.
	UI bool
	// TraceStoreSize bounds the retained completed-solve traces backing
	// the dashboard (0 means the 256 default).
	TraceStoreSize int
	// BenchPath locates the committed bench baseline for /api/bench.
	BenchPath string
}

// solveServer is the long-running HTTP solve service behind
// `relcli serve`.
type solveServer struct {
	cfg   serveConfig
	sem   chan struct{}
	store *obs.TraceStore
	win   *reldash.Window
	start time.Time

	requests *metrics.Counter
	latency  *metrics.Histogram
	inflight *metrics.Gauge
}

// newServeMux builds the service routes: POST /solve, POST /analyze,
// GET /healthz, the obs debug surface (/metrics, /debug/vars,
// /debug/pprof/), and — unless cfg.UI is false — the reldash dashboard
// (/ui, /api/*). The error is a dashboard construction failure (broken
// embedded template), impossible once TestParseTemplates passes.
func newServeMux(cfg serveConfig) (*http.ServeMux, error) {
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default()
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 8
	}
	if cfg.TraceStoreSize <= 0 {
		cfg.TraceStoreSize = 256
	}
	s := &solveServer{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		store: obs.NewTraceStore(cfg.TraceStoreSize),
		win:   reldash.NewWindow(time.Minute),
		start: time.Now(),
		requests: cfg.Registry.NewCounter("relscope_solve_requests_total",
			"Solve requests handled, by HTTP status code.", "code"),
		latency: cfg.Registry.NewHistogram("relscope_http_request_seconds",
			"Request latency by route.", nil, "route"),
		inflight: cfg.Registry.NewGauge("relscope_solve_inflight",
			"Solve requests currently executing."),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	obs.RegisterDebug(mux, cfg.Registry)
	if cfg.UI {
		dash, err := reldash.NewHandler(reldash.Config{
			Store:     s.store,
			Registry:  cfg.Registry,
			BenchPath: cfg.BenchPath,
			Window:    s.win,
			InFlight:  func() int { return int(s.inflight.Value()) },
			Start:     s.start,
		})
		if err != nil {
			return nil, err
		}
		dash.Register(mux)
	}
	return mux, nil
}

// healthzResponse is the GET /healthz reply: not just liveness but the
// operational context a probe (or a human with curl) wants first.
type healthzResponse struct {
	Status   string           `json:"status"`
	UptimeS  float64          `json:"uptime_s"`
	InFlight int              `json:"in_flight"`
	Store    healthzOccupancy `json:"trace_store"`
}

type healthzOccupancy struct {
	Len int `json:"len"`
	Cap int `json:"cap"`
}

func (s *solveServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	err := enc.Encode(healthzResponse{
		Status:   "ok",
		UptimeS:  time.Since(s.start).Seconds(),
		InFlight: int(s.inflight.Value()),
		Store:    healthzOccupancy{Len: s.store.Len(), Cap: s.store.Cap()},
	})
	if err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("healthz response write failed", "err", err)
	}
}

// solveResponse is the POST /solve reply document.
type solveResponse struct {
	Model   string           `json:"model,omitempty"`
	Results []modelio.Result `json:"results,omitempty"`
	Trace   *obs.Span        `json:"trace,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// handleSolve runs one model document through the instrumented solve
// pipeline. The request context is threaded into the solver via the
// guard plumbing, so a disconnecting client (or server shutdown closing
// the connection) cancels the solve at iteration granularity.
func (s *solveServer) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	defer func() {
		s.requests.Inc(strconv.Itoa(code))
		s.latency.Observe(time.Since(start).Seconds(), "/solve")
		s.win.Record(code >= 400)
	}()

	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()
	default:
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		s.reply(w, code, solveResponse{Error: "solve capacity exhausted; retry"})
		return
	}

	spec, err := modelio.Parse(io.LimitReader(r.Body, maxSolveBody))
	if err != nil {
		code = http.StatusBadRequest
		s.reply(w, code, solveResponse{Error: err.Error()})
		return
	}

	// Every solve is traced so the store retains its span tree for the
	// dashboard; the response only carries the tree when asked (?trace=1).
	tr := obs.NewTrace(rootName(spec))
	recs := []obs.Recorder{obs.NewMetricsRecorder(s.cfg.Registry, spec.Name), tr}
	if s.cfg.Logger != nil {
		recs = append(recs, obs.NewSlogRecorder(s.cfg.Logger))
	}
	results, err := modelio.SolveWithOptions(spec, modelio.SolveOptions{
		Preflight: s.cfg.Preflight,
		Recorder:  obs.Multi(recs...),
		Context:   r.Context(),
		Timeout:   s.cfg.SolveTimeout,
		Rails:     s.cfg.Rails,
	})
	resp := solveResponse{Model: spec.Name, Results: results}
	if r.URL.Query().Get("trace") != "" {
		resp.Trace = tr.Finish()
	}
	if err != nil {
		code = solveErrorStatus(err)
		resp.Error = err.Error()
	}
	rec := obs.RecordFromTrace(tr, rootName(spec), "solve")
	rec.Start = start
	rec.Outcome = solveOutcome(err)
	if err != nil {
		rec.Error = err.Error()
	}
	s.store.Put(rec)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("solve request",
			"model", spec.Name, "type", spec.Type, "status", code,
			"wall_ms", float64(time.Since(start).Nanoseconds())/1e6,
			"remote", r.RemoteAddr)
	}
	s.reply(w, code, resp)
}

// handleAnalyze runs the static structural analysis (no solving) over one
// model document: the serve-side preflight. The response mirrors the
// `relcli analyze -json` per-file report. Documents with error-severity
// findings come back 422 so callers can gate a later /solve on it.
func (s *solveServer) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	defer func() {
		s.latency.Observe(time.Since(start).Seconds(), "/analyze")
		s.win.Record(code >= 400)
	}()
	// The body is read once and re-parsed from memory: analyzeDocument
	// consumes the reader, and the trace store wants the model's name.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSolveBody))
	if err != nil {
		code = http.StatusBadRequest
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", err.Error())
		return
	}
	rep := analyzeDocument("<request>", bytes.NewReader(body))
	if lint.HasErrors(rep.Diagnostics) {
		code = http.StatusUnprocessableEntity
	}
	s.store.Put(obs.TraceRecord{
		Model:    analyzeModelName(body),
		Endpoint: "analyze",
		Outcome:  analyzeOutcome(code),
		Start:    start,
		WallMS:   float64(time.Since(start).Nanoseconds()) / 1e6,
	})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("analyze response write failed", "err", err)
	}
}

// analyzeModelName extracts the spec name for the trace-store record; an
// unparseable document is still retained, labeled as such.
func analyzeModelName(body []byte) string {
	spec, err := modelio.Parse(bytes.NewReader(body))
	if err != nil || spec.Name == "" {
		return "<unparsed>"
	}
	return spec.Name
}

func analyzeOutcome(code int) string {
	if code == http.StatusOK {
		return "ok"
	}
	return "error"
}

// solveOutcome classifies how a solve ended for trace-store filtering.
func solveOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, guard.ErrDeadline):
		return "deadline"
	case errors.Is(err, guard.ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

// solveErrorStatus maps the typed solve-failure taxonomy onto HTTP.
func solveErrorStatus(err error) int {
	var lerr *lint.Error
	switch {
	case errors.Is(err, guard.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, guard.ErrCanceled):
		return http.StatusServiceUnavailable
	case errors.As(err, &lerr), errors.Is(err, modelio.ErrBadSpec):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *solveServer) reply(w http.ResponseWriter, code int, resp solveResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("response write failed", "err", err)
	}
}

// rootName labels a request-scoped trace.
func rootName(spec *modelio.Spec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return "solve"
}

// newSlogLogger builds the -log handler: format "text" or "json", level
// "debug" (includes per-iteration convergence events), "info", "warn",
// or "error".
func newSlogLogger(format, level string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("relcli: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("relcli: unknown log format %q (want text or json)", format)
}

// runServe implements the serve subcommand: bind, announce, serve until
// SIGINT/SIGTERM, then drain gracefully — in-flight solves get the grace
// period, after which closing the connections cancels them through the
// guard context plumbing.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port)")
	logFormat := fs.String("log", "", "structured request/solve logs on stderr: text or json")
	logLevel := fs.String("log-level", "info", "log level for -log (debug adds per-iteration events)")
	maxInflight := fs.Int("max-inflight", 8, "maximum concurrent solves; excess requests get 503")
	timeout := fs.Duration("timeout", 30*time.Second, "per-solve deadline (0 disables)")
	rails := fs.String("rails", "", "numerical guard-rail strictness: strict, warn (default), or off")
	preflight := fs.Bool("preflight", false, "lint each model and refuse to solve on errors")
	grace := fs.Duration("grace", 5*time.Second, "shutdown drain period before in-flight solves are canceled")
	ui := fs.Bool("ui", true, "mount the reldash dashboard at /ui (and its /api/* routes)")
	traceStoreSize := fs.Int("trace-store-size", 256, "completed solve traces retained for the dashboard")
	benchPath := fs.String("bench", "BENCH_solvers.json", "bench baseline JSON backing /api/bench")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := guard.ParseStrictness(*rails); err != nil {
		return err
	}
	var logger *slog.Logger
	if *logFormat != "" {
		var err error
		if logger, err = newSlogLogger(*logFormat, *logLevel, stderr); err != nil {
			return err
		}
	}
	mux, err := newServeMux(serveConfig{
		Registry:       metrics.Default(),
		Logger:         logger,
		MaxInflight:    *maxInflight,
		SolveTimeout:   *timeout,
		Rails:          guard.Strictness(*rails),
		Preflight:      *preflight,
		UI:             *ui,
		TraceStoreSize: *traceStoreSize,
		BenchPath:      *benchPath,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "relcli: serving on http://%s (POST /solve, /ui, /metrics, /healthz, /debug/pprof/)\n",
		ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Grace expired with solves still running: close the connections,
		// which cancels their request contexts and interrupts the solvers.
		return srv.Close()
	}
	return nil
}
