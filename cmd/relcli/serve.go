package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/guard"
	"repro/internal/jobs"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/modelio"
	"repro/internal/obs"
	"repro/internal/reldash"
	"repro/internal/slo"
)

// maxSolveBody bounds the accepted model-document size; anything larger
// is a hostile or mistaken upload, not a reliability model.
const maxSolveBody = 8 << 20

// serveConfig wires a solve service together; split from the flag
// parsing so tests can build handlers directly.
type serveConfig struct {
	// Registry receives request and solver metrics and backs /metrics.
	Registry *metrics.Registry
	// Logger receives structured request and solve events (nil disables).
	Logger *slog.Logger
	// MaxInflight bounds concurrent solves; excess requests wait in the
	// admission queue, and past that are shed.
	MaxInflight int
	// QueueDepth bounds requests waiting for a solve slot; beyond it the
	// server sheds load with 429 (0 means 2x MaxInflight).
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot before
	// giving up with 503 (0 means 1s).
	QueueWait time.Duration
	// BreakerThreshold is the consecutive 5xx-class solve failures per
	// model class before its circuit breaker opens (0 means 5; negative
	// disables the breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker stays open before a
	// half-open probe is allowed (0 means 15s).
	BreakerCooldown time.Duration
	// MaxBody bounds the accepted model-document size in bytes (0 means
	// the 8 MiB default).
	MaxBody int64
	// Failpoints is a failpoint schedule ("name:spec;name:spec") armed at
	// construction, for chaos drills against the real handler stack.
	Failpoints string
	// SolveTimeout bounds each solve (0 disables).
	SolveTimeout time.Duration
	// Rails and Preflight mirror the solve-subcommand flags.
	Rails     guard.Strictness
	Preflight bool
	// UI mounts the reldash dashboard at /ui with its /api/* routes.
	UI bool
	// TraceStoreSize bounds the retained completed-solve traces backing
	// the dashboard (0 means the 256 default).
	TraceStoreSize int
	// BenchPath locates the committed bench baseline for /api/bench.
	BenchPath string
	// JobsDir is the checkpoint directory for the async sweep job engine
	// (empty runs jobs in memory only, with no crash recovery).
	JobsDir string
	// JobWorkers bounds concurrently running sweep shards (0 means 4).
	JobWorkers int
	// SLOPath configures declarative objectives: a JSON file path (see
	// slo.ParseConfig), "" for the built-in defaults, or "off" to disable
	// the SLO engine entirely.
	SLOPath string
	// SLOObjectives, when non-nil, overrides SLOPath with objectives
	// built in code (tests, chaos driver).
	SLOObjectives []slo.Objective
	// WideWriter receives the sampled wide-event log as JSON lines (nil
	// disables; runServe points it at a file or stderr).
	WideWriter io.Writer
	// WideSample keeps 1-in-N healthy wide events (errors and non-ok
	// outcomes always log; <= 1 keeps everything).
	WideSample int
	// CorrSeed seeds the correlation-ID stream; 0 derives a seed from
	// the clock (tests pin it for deterministic IDs).
	CorrSeed uint64
	// RetryFloor is the minimum Retry-After hint in seconds for shed and
	// capacity-timeout replies — the answer when the latency histogram
	// is still empty (0 means 1).
	RetryFloor int
	// ProfileDir enables the continuous-profiling ring: periodic pprof
	// CPU/heap captures retained in a bounded on-disk ring (empty
	// disables).
	ProfileDir string
	// ProfileEvery is the capture cadence (0 means 30s when ProfileDir
	// is set).
	ProfileEvery time.Duration
	// ProfileMax bounds retained profile files (0 means 32).
	ProfileMax int
	// SelfModelEvery is the self-model sampling cadence: every tick the
	// server classifies its own state (ok / saturated / open) into the
	// availability CTMC it periodically solves about itself. 0 disables
	// the background sampler; tests step the model explicitly.
	SelfModelEvery time.Duration
}

// solveServer is the long-running HTTP solve service behind
// `relcli serve`.
type solveServer struct {
	cfg   serveConfig
	adm   *admission
	brk   *breakerSet
	store *obs.TraceStore
	win   *reldash.Window
	jobs  *jobs.Engine
	// jobsResumed counts the incomplete jobs Recover picked up from the
	// checkpoint directory at boot.
	jobsResumed int
	start       time.Time
	draining    atomic.Bool

	corr      *obs.CorrSource
	wide      *obs.WideLog
	slo       *slo.Engine
	selfModel *slo.SelfModel
	selfPred  atomic.Pointer[selfPrediction]
	profiles  *obs.ProfileRing

	// stopBg stops the background samplers (self-model, profiling);
	// bgWG waits them out on close.
	stopBg chan struct{}
	bgWG   sync.WaitGroup

	requests *metrics.Counter
	latency  *metrics.Histogram
	inflight *metrics.Gauge
	shed     *metrics.Counter
	degraded *metrics.Counter
	breaker  *metrics.Counter
	panics   *metrics.Counter
	fpTrips  *metrics.Counter
}

// newSolveServer builds the service (handlers, admission controller,
// breakers, metrics) without binding a socket, so tests and the chaos
// driver can exercise the exact production stack in-process. The error
// is a dashboard construction failure (broken embedded template) or a
// malformed cfg.Failpoints schedule.
func newSolveServer(cfg serveConfig) (*solveServer, *http.ServeMux, error) {
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default()
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInflight
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 15 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = maxSolveBody
	}
	if cfg.TraceStoreSize <= 0 {
		cfg.TraceStoreSize = 256
	}
	if cfg.RetryFloor <= 0 {
		cfg.RetryFloor = 1
	}
	if cfg.CorrSeed == 0 {
		cfg.CorrSeed = uint64(time.Now().UnixNano())
	}
	if cfg.Failpoints != "" {
		if err := failpoint.ArmSchedule(cfg.Failpoints); err != nil {
			return nil, nil, err
		}
	}
	s := &solveServer{
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait),
		store: obs.NewTraceStore(cfg.TraceStoreSize),
		win:   reldash.NewWindow(time.Minute),
		start: time.Now(),
		requests: cfg.Registry.NewCounter("relscope_solve_requests_total",
			"Solve requests handled, by HTTP status code.", "code"),
		latency: cfg.Registry.NewHistogram("relscope_http_request_seconds",
			"Request latency by route.", nil, "route"),
		inflight: cfg.Registry.NewGauge("relscope_solve_inflight",
			"Solve requests currently executing."),
		shed: cfg.Registry.NewCounter("relserve_rejected_total",
			"Requests rejected before solving, by reason (shed, capacity-timeout, draining, breaker-open).", "reason"),
		degraded: cfg.Registry.NewCounter("relserve_degraded_total",
			"Degraded bounds-only answers served while a breaker was open, by model class.", "class"),
		breaker: cfg.Registry.NewCounter("relserve_breaker_open_total",
			"Circuit-breaker open transitions, by model class.", "class"),
		panics: cfg.Registry.NewCounter("relserve_panics_total",
			"Handler panics converted to typed 500s, by route.", "route"),
		fpTrips: cfg.Registry.NewCounter("relserve_failpoint_trips_total",
			"Armed failpoint activations, by failpoint name.", "name"),
	}
	s.brk = newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown,
		func(class string) { s.breaker.Inc(class) })
	failpoint.SetOnTrip(func(name string) { s.fpTrips.Inc(name) })
	s.corr = obs.NewCorrSource(cfg.CorrSeed)
	s.selfModel = slo.NewSelfModel()
	s.stopBg = make(chan struct{})
	if cfg.WideWriter != nil {
		s.wide = obs.NewWideLog(cfg.WideWriter, cfg.WideSample)
	}
	objectives := cfg.SLOObjectives
	if objectives == nil {
		switch cfg.SLOPath {
		case "off":
			// SLO engine disabled.
		case "":
			objectives = slo.DefaultObjectives()
		default:
			f, err := os.Open(cfg.SLOPath)
			if err != nil {
				return nil, nil, err
			}
			objectives, err = slo.ParseConfig(f)
			f.Close()
			if err != nil {
				return nil, nil, err
			}
		}
	}
	if len(objectives) > 0 {
		eng, err := slo.New(slo.Config{
			Objectives: objectives,
			Registry:   cfg.Registry,
			OnBreach: func(b slo.Breach) {
				if cfg.Logger != nil {
					cfg.Logger.Warn("slo breach",
						"objective", b.Objective, "window", b.Window,
						"burn_rate", b.BurnRate, "threshold", b.Threshold)
				}
			},
		})
		if err != nil {
			return nil, nil, err
		}
		s.slo = eng
	}
	if cfg.ProfileDir != "" {
		ring, err := obs.NewProfileRing(cfg.ProfileDir, cfg.ProfileMax)
		if err != nil {
			return nil, nil, err
		}
		s.profiles = ring
	}
	jobLogf := func(string, ...any) {}
	if cfg.Logger != nil {
		jobLogf = func(format string, args ...any) {
			cfg.Logger.Warn(fmt.Sprintf(format, args...))
		}
	}
	eng, err := jobs.New(jobs.Config{
		Dir:      cfg.JobsDir,
		Workers:  cfg.JobWorkers,
		Registry: cfg.Registry,
		Logf:     jobLogf,
	})
	if err != nil {
		return nil, nil, err
	}
	s.jobs = eng
	// Incomplete jobs left behind by a killed process resume here, before
	// the socket opens — the durability contract of the WAL checkpoints.
	if s.jobsResumed, err = eng.Recover(); err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.isolated("/solve", s.handleSolve))
	mux.HandleFunc("POST /analyze", s.isolated("/analyze", s.handleAnalyze))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// SLO status and the profile listing mount unconditionally (like
	// /healthz): chaos drills and probes need them with the UI off.
	mux.HandleFunc("GET /api/slo", s.isolated("/api/slo", s.handleSLO))
	mux.HandleFunc("GET /api/profiles", s.isolated("/api/profiles", s.handleProfiles))
	mux.HandleFunc("POST /jobs", s.isolated("/jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /jobs", s.isolated("/jobs", s.handleJobList))
	mux.HandleFunc("GET /jobs/{id}", s.isolated("/jobs", s.handleJobGet))
	mux.HandleFunc("DELETE /jobs/{id}", s.isolated("/jobs", s.handleJobCancel))
	obs.RegisterDebug(mux, cfg.Registry)
	if cfg.UI {
		dash, err := reldash.NewHandler(reldash.Config{
			Store:      s.store,
			Registry:   cfg.Registry,
			BenchPath:  cfg.BenchPath,
			Window:     s.win,
			InFlight:   func() int { return int(s.inflight.Value()) },
			Start:      s.start,
			Resilience: s.resilience,
			Jobs:       s.jobRows,
			SLO:        s.sloView,
			Profiles:   s.profileRows,
		})
		if err != nil {
			return nil, nil, err
		}
		dash.Register(mux)
	}
	s.startBackground()
	return s, mux, nil
}

// newServeMux is the route-only constructor most handler tests use.
func newServeMux(cfg serveConfig) (*http.ServeMux, error) {
	_, mux, err := newSolveServer(cfg)
	return mux, err
}

// isolated wraps a handler with the per-request panic boundary: a panic
// escaping the handler (or injected through a failpoint) is converted
// to a *guard.InternalError and answered as a typed 500, and the server
// keeps serving. Without this, net/http would recover the panic but
// kill the connection with an empty reply.
func (s *solveServer) isolated(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		err := guard.Isolate("serve"+route, func() error {
			h(w, r)
			return nil
		})
		if err != nil {
			s.panics.Inc(route)
			s.requests.Inc("500")
			s.win.Record(true)
			if s.cfg.Logger != nil {
				// The handler stamped its correlation ID on the response
				// header before panicking; recover it for the log join.
				s.cfg.Logger.Error("handler panic isolated", "route", route,
					"corr", w.Header().Get(obs.CorrHeader), "err", err)
			}
			// Best effort: if the handler already wrote a header this is a
			// no-op on the status line but still closes out the request.
			s.reply(w, http.StatusInternalServerError, solveResponse{
				Error: err.Error(), Code: "internal",
			})
		}
	}
}

// resilience snapshots the serve-layer protection state for the
// dashboard and /healthz.
func (s *solveServer) resilience() reldash.Resilience {
	return reldash.Resilience{
		Draining: s.draining.Load(),
		QueueLen: s.adm.queueLen(),
		QueueCap: s.adm.queueCap(),
		Breakers: s.brk.snapshot(),
		Shed:     s.shed.Total(),
		Degraded: s.degraded.Total(),
	}
}

// healthzResponse is the GET /healthz reply: not just liveness but the
// operational context a probe (or a human with curl) wants first.
type healthzResponse struct {
	Status   string            `json:"status"`
	UptimeS  float64           `json:"uptime_s"`
	InFlight int               `json:"in_flight"`
	Queue    healthzOccupancy  `json:"queue"`
	Breakers map[string]string `json:"breakers,omitempty"`
	Store    healthzOccupancy  `json:"trace_store"`
	Jobs     healthzJobs       `json:"jobs"`
	// SLO summarizes the objective engine so load balancers can act on
	// budget exhaustion without scraping /api/slo; omitted when the
	// engine is disabled (keeping the pre-SLO JSON shape).
	SLO *healthzSLO `json:"slo,omitempty"`
}

// healthzSLO is the probe-sized SLO summary: the worst burn rate and the
// smallest remaining error budget across all objectives.
type healthzSLO struct {
	WorstBurn       float64 `json:"worst_burn"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Breaching       bool    `json:"breaching"`
}

// healthzJobs summarizes the async job engine for the probe reply.
type healthzJobs struct {
	Active  int `json:"active"`
	Known   int `json:"known"`
	Resumed int `json:"resumed"`
}

type healthzOccupancy struct {
	Len int `json:"len"`
	Cap int `json:"cap"`
}

// handleHealthz answers 200 "ok" in steady state and 503 "draining"
// once graceful shutdown has begun, so load balancers stop routing new
// work while in-flight solves finish.
func (s *solveServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	resp := healthzResponse{
		Status:   "ok",
		UptimeS:  time.Since(s.start).Seconds(),
		InFlight: int(s.inflight.Value()),
		Queue:    healthzOccupancy{Len: s.adm.queueLen(), Cap: s.adm.queueCap()},
		Breakers: s.brk.snapshot(),
		Store:    healthzOccupancy{Len: s.store.Len(), Cap: s.store.Cap()},
		Jobs:     s.jobsHealth(),
		SLO:      s.sloHealth(),
	}
	if s.draining.Load() {
		resp.Status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil && s.cfg.Logger != nil {
		// Health probes carry no correlation ID to thread through.
		s.cfg.Logger.Warn("healthz response write failed", "err", err) //numvet:allow slog-corr health probes are uncorrelated
	}
}

// sloHealth condenses the objective statuses for /healthz; nil when the
// SLO engine is off.
func (s *solveServer) sloHealth() *healthzSLO {
	if s.slo == nil {
		return nil
	}
	out := &healthzSLO{BudgetRemaining: 1}
	for _, o := range s.slo.Status() {
		if o.WorstBurn > out.WorstBurn {
			out.WorstBurn = o.WorstBurn
		}
		if o.BudgetRemaining < out.BudgetRemaining {
			out.BudgetRemaining = o.BudgetRemaining
		}
		if o.Breaching {
			out.Breaching = true
		}
	}
	return out
}

// solveResponse is the POST /solve reply document. Error carries the
// human-readable failure; Code is the stable machine-readable taxonomy
// (shed, capacity-timeout, draining, breaker-open, too-large, bad-spec,
// deadline, canceled, injected, internal) clients and the chaos driver
// key on. ModelHash fingerprints the posted document so an error can be
// correlated without echoing the body. Degraded marks bounds-only
// answers served while the model class's breaker was open — Results
// then carry Bound intervals instead of exact values.
type solveResponse struct {
	Model     string           `json:"model,omitempty"`
	ModelHash string           `json:"model_hash,omitempty"`
	Degraded  bool             `json:"degraded,omitempty"`
	Results   []modelio.Result `json:"results,omitempty"`
	Trace     *obs.Span        `json:"trace,omitempty"`
	Error     string           `json:"error,omitempty"`
	Code      string           `json:"code,omitempty"`
}

// retryAfter derives the Retry-After seconds from the observed p95
// solve wall and the current queue depth, bottoming out at the
// configured floor while the histogram is still cold.
func (s *solveServer) retryAfter() int {
	return retryAfterSecs(s.latency.Quantile(0.95, "/solve"), s.adm.queueLen(), s.cfg.RetryFloor)
}

// handleSolve runs one model document through the instrumented solve
// pipeline behind the admission controller and the per-class circuit
// breaker. The request context is threaded into the solver via the
// guard plumbing, so a disconnecting client (or server shutdown closing
// the connection) cancels the solve at iteration granularity.
func (s *solveServer) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	corr := s.corrStamp(w, r)
	ev := &obs.WideEvent{Time: start, Corr: corr, Route: "/solve"}
	defer func() {
		s.requests.Inc(strconv.Itoa(code))
		wall := time.Since(start)
		s.latency.Observe(wall.Seconds(), "/solve")
		s.win.Record(code >= 400)
		s.observeSLO("/solve", code, wall)
		ev.Status = code
		ev.WallMS = float64(wall.Nanoseconds()) / 1e6
		s.wide.Log(*ev)
	}()

	if s.draining.Load() {
		code = http.StatusServiceUnavailable
		s.shed.Inc("draining")
		w.Header().Set("Retry-After", "1")
		s.replyEv(w, ev, code, solveResponse{Error: "server is draining for shutdown", Code: "draining"})
		return
	}

	// The body is read (bounded) before admission so every rejection can
	// carry the model hash; reading is microseconds against a solve.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		code = http.StatusBadRequest
		resp := solveResponse{Error: err.Error(), Code: "body-read"}
		if maxBytesError(err) {
			resp.Error = fmt.Sprintf("model document exceeds the %d-byte limit", s.cfg.MaxBody)
			resp.Code = "too-large"
		}
		s.replyEv(w, ev, code, resp)
		return
	}
	hash := modelHash(body)

	release, verdict := s.adm.acquire(r.Context())
	switch verdict {
	case admitOK:
		ev.Queue = "ok"
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			release()
		}()
	case admitShed:
		code = http.StatusTooManyRequests
		ev.Queue = "shed"
		s.shed.Inc("shed")
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		s.replyEv(w, ev, code, solveResponse{
			ModelHash: hash, Code: "shed",
			Error: "admission queue full; load shed",
		})
		return
	case admitTimeout:
		code = http.StatusServiceUnavailable
		ev.Queue = "timeout"
		s.shed.Inc("capacity-timeout")
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		s.replyEv(w, ev, code, solveResponse{
			ModelHash: hash, Code: "capacity-timeout",
			Error: fmt.Sprintf("no solve slot freed within %s", s.cfg.QueueWait),
		})
		return
	default: // admitCanceled: the client is gone; close out cheaply.
		code = http.StatusServiceUnavailable
		ev.Queue = "canceled"
		s.replyEv(w, ev, code, solveResponse{ModelHash: hash, Code: "canceled",
			Error: "client canceled while queued"})
		return
	}

	spec, err := modelio.Parse(bytes.NewReader(body))
	if err != nil {
		code = http.StatusBadRequest
		respCode := "bad-spec"
		if errorCode(err) == "injected" {
			// The parser itself broke (failpoint), not the document.
			code = http.StatusInternalServerError
			respCode = "injected"
		}
		s.replyEv(w, ev, code, solveResponse{ModelHash: hash, Error: err.Error(), Code: respCode})
		return
	}

	// Circuit breaker: when the exact path for this model class has been
	// failing consecutively, short-circuit to a degraded bounds-only
	// answer rather than burning a solve slot on a likely failure.
	proceed, probe := s.brk.allow(spec.Type)
	switch {
	case !proceed:
		ev.Breaker = "open"
	case probe:
		ev.Breaker = "probe"
	default:
		ev.Breaker = "closed"
	}
	if !proceed {
		s.replyDegraded(w, ev, &code, spec, hash, corr)
		return
	}

	// Every solve is traced so the store retains its span tree for the
	// dashboard; the response only carries the tree when asked (?trace=1).
	tr := obs.NewTrace(rootName(spec))
	tr.Set(obs.S("corr", corr))
	recs := []obs.Recorder{obs.NewMetricsRecorder(s.cfg.Registry, spec.Name), tr}
	if s.cfg.Logger != nil {
		recs = append(recs, obs.NewSlogRecorder(s.cfg.Logger))
	}
	var results []modelio.Result
	solveErr := guard.Isolate("serve.solve", func() error {
		var err error
		results, err = modelio.SolveWithOptions(spec, modelio.SolveOptions{
			Preflight: s.cfg.Preflight,
			Recorder:  obs.Multi(recs...),
			Context:   r.Context(),
			Timeout:   s.cfg.SolveTimeout,
			Rails:     s.cfg.Rails,
		})
		return err
	})
	resp := solveResponse{Model: spec.Name, ModelHash: hash, Results: results}
	if r.URL.Query().Get("trace") != "" {
		resp.Trace = tr.Finish()
	}
	if solveErr != nil {
		code = solveErrorStatus(solveErr)
		resp.Error = solveErr.Error()
		resp.Code = errorCode(solveErr)
	}
	// 5xx-class outcomes are solver breakage and feed the breaker; 4xx
	// (bad documents, client cancellations) do not.
	s.brk.record(spec.Type, probe, code >= http.StatusInternalServerError)
	rec := obs.RecordFromTrace(tr, rootName(spec), "solve")
	rec.Start = start
	rec.Corr = corr
	rec.Outcome = solveOutcome(solveErr)
	if solveErr != nil {
		rec.Error = solveErr.Error()
	}
	ev.Solver = rec.Solver
	ev.Outcome = rec.Outcome
	// A panicking trace store (failpoint) must not take the response
	// down with it: the record is an observability nicety.
	if err := guard.Isolate("serve.store", func() error { ev.Trace = s.store.Put(rec); return nil }); err != nil {
		s.panics.Inc("/solve/store")
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("solve request",
			"corr", corr, "model", spec.Name, "type", spec.Type, "status", code,
			"model_hash", hash, "degraded", false,
			"wall_ms", float64(time.Since(start).Nanoseconds())/1e6,
			"remote", r.RemoteAddr)
	}
	s.replyEv(w, ev, code, resp)
}

// replyDegraded answers a breaker-open request: a bounds-only degraded
// solve when the model family has one (rbd, faulttree), 503 with the
// cooldown-derived Retry-After when it does not (ctmc and friends have
// no cheap certified bounds).
func (s *solveServer) replyDegraded(w http.ResponseWriter, ev *obs.WideEvent, code *int, spec *modelio.Spec, hash, corr string) {
	results, err := modelio.SolveBounds(spec)
	if err != nil {
		*code = http.StatusServiceUnavailable
		s.shed.Inc("breaker-open")
		w.Header().Set("Retry-After", strconv.Itoa(s.brk.retrySecs(spec.Type)))
		s.replyEv(w, ev, *code, solveResponse{
			Model: spec.Name, ModelHash: hash, Code: "breaker-open",
			Error: fmt.Sprintf("circuit breaker open for model class %q and no bounds-only path: %v", spec.Type, err),
		})
		return
	}
	s.degraded.Inc(spec.Type)
	ev.Outcome = "degraded"
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn("degraded bounds-only answer",
			"corr", corr, "model", spec.Name, "type", spec.Type, "model_hash", hash)
	}
	s.replyEv(w, ev, *code, solveResponse{
		Model: spec.Name, ModelHash: hash, Degraded: true, Results: results,
	})
}

// handleAnalyze runs the static structural analysis (no solving) over one
// model document: the serve-side preflight. The response mirrors the
// `relcli analyze -json` per-file report. Documents with error-severity
// findings come back 422 so callers can gate a later /solve on it.
func (s *solveServer) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	corr := s.corrStamp(w, r)
	ev := &obs.WideEvent{Time: start, Corr: corr, Route: "/analyze"}
	defer func() {
		wall := time.Since(start)
		s.latency.Observe(wall.Seconds(), "/analyze")
		s.win.Record(code >= 400)
		s.observeSLO("/analyze", code, wall)
		ev.Status = code
		ev.WallMS = float64(wall.Nanoseconds()) / 1e6
		s.wide.Log(*ev)
	}()
	// The body is read once and re-parsed from memory: analyzeDocument
	// consumes the reader, and the trace store wants the model's name.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		code = http.StatusBadRequest
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", err.Error())
		return
	}
	rep := analyzeDocument("<request>", bytes.NewReader(body))
	if lint.HasErrors(rep.Diagnostics) {
		code = http.StatusUnprocessableEntity
	}
	model := analyzeModelName(body)
	ev.Model = model
	ev.Outcome = analyzeOutcome(code)
	ev.Trace = s.store.Put(obs.TraceRecord{
		Corr:     corr,
		Model:    model,
		Endpoint: "analyze",
		Outcome:  analyzeOutcome(code),
		Start:    start,
		WallMS:   float64(time.Since(start).Nanoseconds()) / 1e6,
	})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("analyze response write failed", "corr", corr, "err", err)
	}
}

// analyzeModelName extracts the spec name for the trace-store record; an
// unparseable document is still retained, labeled as such.
func analyzeModelName(body []byte) string {
	spec, err := modelio.Parse(bytes.NewReader(body))
	if err != nil || spec.Name == "" {
		return "<unparsed>"
	}
	return spec.Name
}

func analyzeOutcome(code int) string {
	if code == http.StatusOK {
		return "ok"
	}
	return "error"
}

// solveOutcome classifies how a solve ended for trace-store filtering.
func solveOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, guard.ErrDeadline):
		return "deadline"
	case errors.Is(err, guard.ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

// solveErrorStatus maps the typed solve-failure taxonomy onto HTTP.
func solveErrorStatus(err error) int {
	var lerr *lint.Error
	switch {
	case errors.Is(err, guard.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, guard.ErrCanceled):
		return http.StatusServiceUnavailable
	case errors.As(err, &lerr), errors.Is(err, modelio.ErrBadSpec):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *solveServer) reply(w http.ResponseWriter, code int, resp solveResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("response write failed", "err", err)
	}
}

// rootName labels a request-scoped trace.
func rootName(spec *modelio.Spec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return "solve"
}

// newSlogLogger builds the -log handler: format "text" or "json", level
// "debug" (includes per-iteration convergence events), "info", "warn",
// or "error".
func newSlogLogger(format, level string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("relcli: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("relcli: unknown log format %q (want text or json)", format)
}

// runServe implements the serve subcommand: bind, announce, serve until
// SIGINT/SIGTERM, then drain gracefully — in-flight solves get the grace
// period, after which closing the connections cancels them through the
// guard context plumbing.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port)")
	logFormat := fs.String("log", "", "structured request/solve logs on stderr: text or json")
	logLevel := fs.String("log-level", "info", "log level for -log (debug adds per-iteration events)")
	maxInflight := fs.Int("max-inflight", 8, "maximum concurrent solves; excess requests queue, then shed")
	queueDepth := fs.Int("queue-depth", 0, "admission-queue depth before load shedding with 429 (0 means 2x max-inflight)")
	queueWait := fs.Duration("queue-wait", time.Second, "longest a queued request waits for a solve slot before 503")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive solver failures per model class before its breaker opens (negative disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 15*time.Second, "how long an open breaker waits before a half-open probe")
	failpoints := fs.String("failpoints", "", "failpoint schedule to arm (name:spec;name:spec), for chaos drills; RELFAIL adds more")
	maxBody := fs.Int64("max-body", 0, "largest accepted model document in bytes (0 means 8 MiB)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-solve deadline (0 disables)")
	rails := fs.String("rails", "", "numerical guard-rail strictness: strict, warn (default), or off")
	preflight := fs.Bool("preflight", false, "lint each model and refuse to solve on errors")
	grace := fs.Duration("grace", 5*time.Second, "shutdown drain period before in-flight solves are canceled")
	ui := fs.Bool("ui", true, "mount the reldash dashboard at /ui (and its /api/* routes)")
	traceStoreSize := fs.Int("trace-store-size", 256, "completed solve traces retained for the dashboard")
	benchPath := fs.String("bench", "BENCH_solvers.json", "bench baseline JSON backing /api/bench")
	jobsDir := fs.String("jobs-dir", "", "checkpoint directory for async sweep jobs; killed processes resume incomplete jobs from it (empty disables durability)")
	jobWorkers := fs.Int("job-workers", 4, "concurrently running sweep shards across all jobs")
	sloPath := fs.String("slo", "", "SLO objectives JSON file (empty uses built-in defaults; \"off\" disables the SLO engine)")
	wideEvents := fs.String("wide-events", "", "wide-event log destination: a file path, or \"-\" for stderr (empty disables)")
	wideSample := fs.Int("wide-sample", 10, "keep 1-in-N healthy wide events (errors always log; 1 keeps all)")
	profileDir := fs.String("profile-dir", "", "continuous-profiling ring directory for periodic pprof CPU/heap captures (empty disables)")
	profileEvery := fs.Duration("profile-every", 30*time.Second, "continuous-profiling capture cadence")
	profileMax := fs.Int("profile-max", 32, "profile files retained in the ring before the oldest is deleted")
	retryFloor := fs.Int("retry-floor", 1, "minimum Retry-After seconds hinted on shed/capacity responses")
	selfModelEvery := fs.Duration("selfmodel-every", 2*time.Second, "self-model sampling cadence: how often serve classifies its own state into the availability CTMC it solves about itself (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var wideW io.Writer
	switch *wideEvents {
	case "":
	case "-":
		wideW = stderr
	default:
		f, err := os.OpenFile(*wideEvents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		wideW = f
	}
	if _, err := guard.ParseStrictness(*rails); err != nil {
		return err
	}
	var logger *slog.Logger
	if *logFormat != "" {
		var err error
		if logger, err = newSlogLogger(*logFormat, *logLevel, stderr); err != nil {
			return err
		}
	}
	if n, err := failpoint.ArmFromEnv(os.Getenv); err != nil {
		return err
	} else if n > 0 {
		fmt.Fprintf(stdout, "relcli: armed %d failpoint(s) from %s\n", n, failpoint.EnvVar)
	}
	s, mux, err := newSolveServer(serveConfig{
		Registry:         metrics.Default(),
		Logger:           logger,
		MaxInflight:      *maxInflight,
		QueueDepth:       *queueDepth,
		QueueWait:        *queueWait,
		MaxBody:          *maxBody,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Failpoints:       *failpoints,
		SolveTimeout:     *timeout,
		Rails:            guard.Strictness(*rails),
		Preflight:        *preflight,
		UI:               *ui,
		TraceStoreSize:   *traceStoreSize,
		BenchPath:        *benchPath,
		JobsDir:          *jobsDir,
		JobWorkers:       *jobWorkers,
		SLOPath:          *sloPath,
		WideWriter:       wideW,
		WideSample:       *wideSample,
		ProfileDir:       *profileDir,
		ProfileEvery:     *profileEvery,
		ProfileMax:       *profileMax,
		RetryFloor:       *retryFloor,
		SelfModelEvery:   *selfModelEvery,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "relcli: serving on http://%s (POST /solve, POST /jobs, /ui, /metrics, /healthz, /debug/pprof/)\n",
		ln.Addr())
	if s.jobsResumed > 0 {
		fmt.Fprintf(stdout, "relcli: resumed %d incomplete sweep job(s) from %s\n", s.jobsResumed, *jobsDir)
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip to draining first: /healthz answers 503 "draining" and new
	// solves and job submissions are refused while in-flight work gets
	// the grace period.
	s.draining.Store(true)
	s.stopBackground()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// The job engine drains concurrently with the HTTP listener: queued
	// shards stay queued (their WAL checkpoints carry them to the next
	// process), in-flight shards finish and checkpoint, and past the
	// grace period the remaining shards are hard-canceled — still safe,
	// an uncheckpointed shard is simply recomputed on resume.
	jobsDone := make(chan error, 1)
	go func() { jobsDone <- s.jobs.Close(shutdownCtx) }()
	err = srv.Shutdown(shutdownCtx)
	if jerr := <-jobsDone; jerr != nil {
		fmt.Fprintf(stdout, "relcli: job drain cut short, unfinished shards recompute on resume: %v\n", jerr)
	}
	if err != nil {
		// Grace expired with solves still running: close the connections,
		// which cancels their request contexts and interrupts the solvers.
		return srv.Close()
	}
	return nil
}
