package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/jobs"
	"repro/internal/reldash"
)

// jobResponse is the reply document for the /jobs routes. Error/Code
// follow the same taxonomy as solveResponse (draining, too-large,
// bad-spec, unknown-job, terminal, internal).
type jobResponse struct {
	Job   *jobs.Snapshot   `json:"job,omitempty"`
	Jobs  []*jobs.Snapshot `json:"jobs,omitempty"`
	Error string           `json:"error,omitempty"`
	Code  string           `json:"code,omitempty"`
}

// writeJob emits an indented JSON job reply, mirroring solveServer.reply.
func (s *solveServer) writeJob(w http.ResponseWriter, code int, resp jobResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("job response write failed", "err", err)
	}
}

// handleJobSubmit accepts a sweep job document on POST /jobs. A request
// carrying an Idempotency-Key header it has seen before gets the
// existing job back with 200 instead of a duplicate with 201, so clients
// can blindly re-post after a lost response.
func (s *solveServer) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	corr := s.corrStamp(w, r)
	code := http.StatusCreated
	defer func() {
		s.latency.Observe(time.Since(start).Seconds(), "/jobs")
		s.win.Record(code >= 400)
	}()
	if s.draining.Load() {
		code = http.StatusServiceUnavailable
		s.shed.Inc("draining")
		w.Header().Set("Retry-After", "1")
		s.writeJob(w, code, jobResponse{Error: "server is draining for shutdown", Code: "draining"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		code = http.StatusBadRequest
		resp := jobResponse{Error: err.Error(), Code: "body-read"}
		if maxBytesError(err) {
			resp.Error = fmt.Sprintf("job document exceeds the %d-byte limit", s.cfg.MaxBody)
			resp.Code = "too-large"
		}
		s.writeJob(w, code, resp)
		return
	}
	spec, err := jobs.ParseSpec(body)
	if err != nil {
		code = http.StatusBadRequest
		s.writeJob(w, code, jobResponse{Error: err.Error(), Code: "bad-spec"})
		return
	}
	spec.Corr = corr
	snap, created, err := s.jobs.Submit(spec, r.Header.Get("Idempotency-Key"))
	if err != nil {
		code, respCode := jobErrorStatus(err)
		s.writeJob(w, code, jobResponse{Error: err.Error(), Code: respCode})
		return
	}
	if !created {
		code = http.StatusOK
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("job submitted",
			"corr", corr, "job", snap.ID, "created", created, "samples", snap.Samples,
			"shards", snap.Shards, "remote", r.RemoteAddr)
	}
	w.Header().Set("Location", "/jobs/"+snap.ID)
	s.writeJob(w, code, jobResponse{Job: snap})
}

// handleJobGet answers GET /jobs/{id} with the job's live snapshot —
// progress while running, the folded result once done.
func (s *solveServer) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		code, respCode := jobErrorStatus(err)
		s.writeJob(w, code, jobResponse{Error: err.Error(), Code: respCode})
		return
	}
	s.writeJob(w, http.StatusOK, jobResponse{Job: snap})
}

// handleJobList answers GET /jobs with every known job, including
// terminal history replayed from the checkpoint directory.
func (s *solveServer) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.List()
	if list == nil {
		list = []*jobs.Snapshot{}
	}
	s.writeJob(w, http.StatusOK, jobResponse{Jobs: list})
}

// handleJobCancel stops a running job on DELETE /jobs/{id} and returns
// its terminal snapshot. Canceling an already-terminal job is a 409 so
// retried deletes are distinguishable from races.
func (s *solveServer) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	corr := s.corrStamp(w, r)
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		code, respCode := jobErrorStatus(err)
		s.writeJob(w, code, jobResponse{Error: err.Error(), Code: respCode})
		return
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("job canceled", "corr", corr, "job", snap.ID, "remote", r.RemoteAddr)
	}
	s.writeJob(w, http.StatusOK, jobResponse{Job: snap})
}

// jobErrorStatus maps the engine's typed sentinels onto HTTP and the
// machine-readable code taxonomy.
func jobErrorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, jobs.ErrBadSpec):
		return http.StatusBadRequest, "bad-spec"
	case errors.Is(err, jobs.ErrUnknownJob):
		return http.StatusNotFound, "unknown-job"
	case errors.Is(err, jobs.ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, jobs.ErrTerminal):
		return http.StatusConflict, "terminal"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// jobRows flattens the engine's snapshots for the dashboard Jobs panel.
func (s *solveServer) jobRows() []reldash.JobRow {
	list := s.jobs.List()
	rows := make([]reldash.JobRow, 0, len(list))
	for _, j := range list {
		rows = append(rows, reldash.JobRow{
			ID:         j.ID,
			State:      string(j.State),
			Samples:    j.Samples,
			Shards:     j.Shards,
			DoneShards: j.DoneShards,
			Progress:   j.Progress(),
			Retries:    j.Retries,
			Resumed:    j.Resumed,
			Error:      j.Error,
		})
	}
	return rows
}

// jobsHealth summarizes the engine for /healthz.
func (s *solveServer) jobsHealth() healthzJobs {
	h := healthzJobs{Resumed: s.jobsResumed}
	for _, j := range s.jobs.List() {
		h.Known++
		if j.State == jobs.StateRunning {
			h.Active++
		}
	}
	return h
}
