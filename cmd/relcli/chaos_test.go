package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/failpoint"
)

// TestChaosSmoke runs a miniature chaos drill through the subcommand
// entry point: seeded failpoints, a small swarm, and every invariant
// enforced (the full-size drill is the CHECK_CHAOS gate in
// scripts/check.sh).
func TestChaosSmoke(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	var out bytes.Buffer
	if err := runChaos([]string{"-requests", "36", "-swarm", "4", "-seed", "42"}, &out); err != nil {
		t.Fatalf("chaos drill failed: %v\n%s", err, out.String())
	}
	dec := json.NewDecoder(&out)
	var rep chaosReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 36 {
		t.Errorf("report counts %d requests, want 36", rep.Requests)
	}
	if !rep.BreakerCycleOK {
		t.Error("breaker open/re-close cycle did not complete")
	}
	if len(rep.Violations) > 0 {
		t.Errorf("violations: %v", rep.Violations)
	}
	if rep.ByStatus["200"] == 0 {
		t.Error("no successful solves at all under injection")
	}
}

// TestChaosScheduleDeterminism: the same seed arms byte-identical
// failpoint schedules — the reproducibility contract chaos reports
// depend on.
// TestChaosKillResume runs the durability drill end to end: kill a
// checkpointing server mid-sweep, resume on a fresh one, demand
// bit-identical folded quantiles.
func TestChaosKillResume(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	var out bytes.Buffer
	if err := runChaos([]string{"-kill-resume", "-seed", "7"}, &out); err != nil {
		t.Fatalf("kill-resume drill failed: %v\n%s", err, out.String())
	}
	var rep killResumeReport
	if err := json.NewDecoder(&out).Decode(&rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if !rep.Identical {
		t.Error("resumed result not bit-identical to the uninterrupted run")
	}
	if rep.DoneAtKill <= 0 || rep.DoneAtKill >= rep.Shards {
		t.Errorf("kill landed at %d/%d shards; the drill needs a mid-sweep kill", rep.DoneAtKill, rep.Shards)
	}
	if rep.ResumedShards <= 0 {
		t.Error("no shards were resumed from the WAL")
	}
}

func TestChaosScheduleDeterminism(t *testing.T) {
	if chaosSchedule(42) != chaosSchedule(42) {
		t.Error("same seed produced different schedules")
	}
	if chaosSchedule(42) == chaosSchedule(43) {
		t.Error("different seeds produced the same probabilistic streams")
	}
}
