package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
)

// rbdDegradable is an inline model whose reliability measure has a
// cut-set bounding path, so an open breaker can still answer it.
const rbdDegradable = `{"type":"rbd","name":"deg","rbd":{
	"components":[
		{"name":"a","lifetime":{"kind":"exponential","rate":0.001}},
		{"name":"b","lifetime":{"kind":"exponential","rate":0.001}}],
	"structure":{"op":"parallel","children":[{"comp":"a"},{"comp":"b"}]},
	"measures":["reliability"],"time":100}}`

// ctmcPlain is an inline CTMC — a model class with no bounds-only path.
const ctmcPlain = `{"type":"ctmc","name":"pair","ctmc":{
	"transitions":[{"from":"up","to":"down","rate":1},{"from":"down","to":"up","rate":10}],
	"upStates":["up"],"measures":["availability"]}}`

func postJSON(t *testing.T, h http.Handler, doc string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(doc))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeSolve(t *testing.T, w *httptest.ResponseRecorder) solveResponse {
	t.Helper()
	var resp solveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

// TestAdmissionVerdicts unit-tests the two-stage admission controller:
// slots, then a bounded queue, then shedding.
func TestAdmissionVerdicts(t *testing.T) {
	a := newAdmission(1, 1, 30*time.Millisecond)

	release, v := a.acquire(context.Background())
	if v != admitOK || release == nil {
		t.Fatalf("first acquire: verdict %d", v)
	}

	// Slot held: the next request queues and times out.
	start := time.Now()
	if _, v := a.acquire(context.Background()); v != admitTimeout {
		t.Fatalf("queued acquire: verdict %d, want admitTimeout", v)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("timeout verdict returned before the wait budget elapsed")
	}

	// Queue occupied by a waiter: a third concurrent request is shed.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = a.acquire(context.Background()) // occupies the queue slot
	}()
	deadline := time.Now().Add(time.Second)
	for a.queueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, v := a.acquire(context.Background()); v != admitShed {
		t.Errorf("overflow acquire: verdict %d, want admitShed", v)
	}
	wg.Wait()

	// A canceled client while queued is its own verdict.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a2 := newAdmission(1, 1, time.Minute)
	rel2, _ := a2.acquire(context.Background())
	defer rel2()
	if _, v := a2.acquire(ctx); v != admitCanceled {
		t.Errorf("canceled acquire: verdict %d, want admitCanceled", v)
	}

	release()
	rel3, v := a.acquire(context.Background())
	if v != admitOK {
		t.Fatalf("post-release acquire: verdict %d", v)
	}
	rel3()
}

// TestServe429vs503vs504 drives the full handler stack through every
// rejection distinction: 429 load shed (queue full), 503 capacity
// timeout (queued too long), and 504 solve deadline — each with a
// Retry-After header, a typed code, and the model hash (satellite:
// concurrency-limit error contract).
func TestServe429vs503vs504(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	// The first request's first SOR sweep stalls 2s, pinning the single
	// solve slot while the later requests probe the admission layer.
	if err := failpoint.Arm("linalg.sor.sweep", "times(1)->delay(2s)"); err != nil {
		t.Fatal(err)
	}
	mux := mustServeMux(t, serveConfig{
		Registry:    metrics.NewRegistry(),
		MaxInflight: 1, QueueDepth: 1, QueueWait: 600 * time.Millisecond,
	})

	var wg sync.WaitGroup
	results := make([]*httptest.ResponseRecorder, 3)
	launch := func(i int, delay time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			results[i] = postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
		}()
	}
	launch(0, 0)                    // holds the slot ~2s
	launch(1, 300*time.Millisecond) // queues, times out at ~900ms -> 503
	launch(2, 600*time.Millisecond) // queue full -> 429 immediately
	wg.Wait()

	if results[0].Code != http.StatusOK {
		t.Errorf("slot-holding request: status %d: %s", results[0].Code, results[0].Body.String())
	}
	timedOut := decodeSolve(t, results[1])
	if results[1].Code != http.StatusServiceUnavailable || timedOut.Code != "capacity-timeout" {
		t.Errorf("queued request: status %d code %q, want 503 capacity-timeout", results[1].Code, timedOut.Code)
	}
	shed := decodeSolve(t, results[2])
	if results[2].Code != http.StatusTooManyRequests || shed.Code != "shed" {
		t.Errorf("overflow request: status %d code %q, want 429 shed", results[2].Code, shed.Code)
	}
	for i := 1; i <= 2; i++ {
		resp := decodeSolve(t, results[i])
		if results[i].Header().Get("Retry-After") == "" {
			t.Errorf("request %d: missing Retry-After header", i)
		}
		if resp.ModelHash == "" {
			t.Errorf("request %d: missing model_hash in error body", i)
		}
	}

	// 504: the deadline distinction, same contract.
	failpoint.Reset()
	mux = mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), SolveTimeout: time.Nanosecond})
	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	resp := decodeSolve(t, w)
	if w.Code != http.StatusGatewayTimeout || resp.Code != "deadline" || resp.ModelHash == "" {
		t.Errorf("deadline request: status %d code %q hash %q, want 504 deadline <hash>",
			w.Code, resp.Code, resp.ModelHash)
	}
}

// TestServeDrainingHealthz: once graceful shutdown flips the draining
// flag, /healthz answers 503 "draining" and new solves are refused
// with the draining code (satellite: drain visibility).
func TestServeDrainingHealthz(t *testing.T) {
	s, mux, err := newSolveServer(serveConfig{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s.draining.Store(true)

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503", w.Code)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("healthz status %q, want draining", h.Status)
	}

	sw := postJSON(t, mux, rbdDegradable)
	resp := decodeSolve(t, sw)
	if sw.Code != http.StatusServiceUnavailable || resp.Code != "draining" {
		t.Errorf("solve during drain: status %d code %q, want 503 draining", sw.Code, resp.Code)
	}
}

// TestServeBreakerDegraded: consecutive injected solver failures open
// the rbd breaker, after which requests get 200 degraded bounds-only
// answers with certified intervals instead of 500s.
func TestServeBreakerDegraded(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	s, mux, err := newSolveServer(serveConfig{
		Registry:         metrics.NewRegistry(),
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("modelio.build", "error(solver wrecked)"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		w := postJSON(t, mux, rbdDegradable)
		resp := decodeSolve(t, w)
		if w.Code != http.StatusInternalServerError || resp.Code != "injected" {
			t.Fatalf("request %d: status %d code %q, want 500 injected", i, w.Code, resp.Code)
		}
	}

	w := postJSON(t, mux, rbdDegradable)
	resp := decodeSolve(t, w)
	if w.Code != http.StatusOK || !resp.Degraded {
		t.Fatalf("breaker-open request: status %d degraded=%v: %s", w.Code, resp.Degraded, w.Body.String())
	}
	if len(resp.Results) != 1 || resp.Results[0].Bound == nil {
		t.Fatalf("degraded results missing bound: %s", w.Body.String())
	}
	b := resp.Results[0].Bound
	if b.Lower < 0 || b.Upper > 1 || b.Lower > b.Upper {
		t.Errorf("degraded bound [%g, %g] malformed", b.Lower, b.Upper)
	}
	if got := s.resilience(); got.Breakers["rbd"] != "open" || got.Degraded != 1 {
		t.Errorf("resilience snapshot = %+v, want rbd open with one degraded answer", got)
	}
}

// TestServeBreakerOpenNoBoundsThenRecloses: a CTMC has no bounding
// path, so its open breaker answers 503 breaker-open; once the fault is
// cleared and the cooldown elapses, the half-open probe closes the
// breaker again.
func TestServeBreakerOpenNoBoundsThenRecloses(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	s, mux, err := newSolveServer(serveConfig{
		Registry:         metrics.NewRegistry(),
		BreakerThreshold: 1, BreakerCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("modelio.build", "error"); err != nil {
		t.Fatal(err)
	}

	w := postJSON(t, mux, ctmcPlain)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("faulted solve: status %d, want 500", w.Code)
	}
	w = postJSON(t, mux, ctmcPlain)
	resp := decodeSolve(t, w)
	if w.Code != http.StatusServiceUnavailable || resp.Code != "breaker-open" {
		t.Fatalf("open breaker: status %d code %q, want 503 breaker-open", w.Code, resp.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("breaker-open reply missing Retry-After")
	}

	failpoint.Reset()
	time.Sleep(60 * time.Millisecond)
	w = postJSON(t, mux, ctmcPlain)
	if w.Code != http.StatusOK {
		t.Fatalf("half-open probe: status %d: %s", w.Code, w.Body.String())
	}
	if st := s.brk.snapshot(); st["ctmc"] != "" {
		t.Errorf("breaker state after successful probe = %q, want closed (omitted)", st["ctmc"])
	}
}

// TestServePanicIsolation: an injected panic inside the request path is
// converted to a typed 500 and the server keeps answering.
func TestServePanicIsolation(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})
	if err := failpoint.Arm("modelio.parse", "times(1)->panic(parser detonated)"); err != nil {
		t.Fatal(err)
	}

	w := postJSON(t, mux, rbdDegradable)
	resp := decodeSolve(t, w)
	if w.Code != http.StatusInternalServerError || resp.Code != "internal" {
		t.Fatalf("panicking request: status %d code %q, want 500 internal", w.Code, resp.Code)
	}
	if !strings.Contains(resp.Error, "parser detonated") {
		t.Errorf("error body lost the panic payload: %q", resp.Error)
	}

	// The next request must succeed: the panic was isolated per-request.
	w = postJSON(t, mux, rbdDegradable)
	if w.Code != http.StatusOK {
		t.Errorf("request after panic: status %d: %s", w.Code, w.Body.String())
	}
}

// TestServeStorePanicDoesNotFailSolve: a panicking trace store loses
// the record, never the solve response.
func TestServeStorePanicDoesNotFailSolve(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})
	if err := failpoint.Arm("obs.store.put", "panic(store detonated)"); err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, mux, rbdDegradable)
	if w.Code != http.StatusOK {
		t.Errorf("solve with panicking store: status %d: %s", w.Code, w.Body.String())
	}
}

// TestServeOversizeBody: a body past MaxBody is a client error (400
// too-large), never a 500.
func TestServeOversizeBody(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), MaxBody: 64})
	big := bytes.Repeat([]byte("x"), 128)
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(big))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	resp := decodeSolve(t, w)
	if w.Code != http.StatusBadRequest || resp.Code != "too-large" {
		t.Errorf("oversize body: status %d code %q, want 400 too-large", w.Code, resp.Code)
	}
}

// TestRetryAfterSecsColdHistogram: before any solve completes the p95
// quantile is NaN; the Retry-After derivation must answer the
// configured floor, never 0 or a NaN-coerced garbage value
// (regression: a cold histogram used to produce Retry-After: 0,
// which RFC 9110 clients read as "retry immediately" — exactly wrong
// while the server is saturated).
func TestRetryAfterSecsColdHistogram(t *testing.T) {
	cases := []struct {
		name     string
		p95      float64
		queueLen int
		floor    int
		want     int
	}{
		{"cold histogram NaN", math.NaN(), 0, 1, 1},
		{"cold histogram NaN with floor", math.NaN(), 5, 3, 3},
		{"zero p95", 0, 2, 2, 2},
		{"negative p95", -1, 0, 1, 1},
		{"warm below floor", 0.1, 0, 4, 4},
		{"warm above floor", 2.5, 1, 1, 5}, // ceil(2.5*2)
		{"clamped to 60", 30, 9, 1, 60},
		{"floor below 1 coerced", math.NaN(), 0, 0, 1},
		{"floor above 60 clamped", math.NaN(), 0, 120, 60},
	}
	for _, tc := range cases {
		if got := retryAfterSecs(tc.p95, tc.queueLen, tc.floor); got != tc.want {
			t.Errorf("%s: retryAfterSecs(%g, %d, %d) = %d, want %d",
				tc.name, tc.p95, tc.queueLen, tc.floor, got, tc.want)
		}
	}
}

// TestServeColdRejectRetryAfterFloor drives the integration path: a
// capacity rejection on a server that has never completed a solve
// (cold latency histogram) carries the configured Retry-After floor.
func TestServeColdRejectRetryAfterFloor(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm("linalg.sor.sweep", "times(1)->delay(2s)"); err != nil {
		t.Fatal(err)
	}
	mux := mustServeMux(t, serveConfig{
		Registry:    metrics.NewRegistry(),
		MaxInflight: 1, QueueDepth: 1, QueueWait: 100 * time.Millisecond,
		RetryFloor: 7,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	first := make(chan struct{})
	go func() {
		defer wg.Done()
		close(first)
		postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	}()
	<-first
	time.Sleep(300 * time.Millisecond) // let the slot-holder start solving
	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	wg.Wait()
	if w.Code != http.StatusServiceUnavailable && w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 503 or 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Errorf("cold-histogram rejection Retry-After = %q, want \"7\" (the floor)", got)
	}
}
