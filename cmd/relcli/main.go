// Command relcli solves reliability/availability models described in JSON.
//
// Usage:
//
//	relcli -model system.json [-json]
//	cat system.json | relcli [-json]
//
// The input format is documented in internal/modelio and README.md; it
// covers reliability block diagrams, fault trees, CTMCs, and reliability
// graphs with per-model measure selection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/modelio"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relcli:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the JSON model (default: stdin)")
	asJSON := fs.Bool("json", false, "emit results as JSON instead of text")
	asDOT := fs.Bool("dot", false, "emit the model structure as Graphviz DOT (ctmc/spn)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spec, err := modelio.Parse(in)
	if err != nil {
		return err
	}
	if *asDOT {
		return modelio.WriteDOT(spec, stdout)
	}
	results, err := modelio.Solve(spec)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	_, err = io.WriteString(stdout, modelio.Render(spec.Name, results))
	return err
}
