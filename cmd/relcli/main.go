// Command relcli solves reliability/availability models described in JSON.
//
// Usage:
//
//	relcli -model system.json [-json] [-preflight]
//	cat system.json | relcli [-json]
//	relcli lint [-json] model.json [model.json ...]
//
// The input format is documented in internal/modelio and README.md; it
// covers reliability block diagrams, fault trees, CTMCs, reliability
// graphs, and stochastic Petri nets with per-model measure selection.
//
// The lint subcommand statically checks model documents without solving
// them, printing one diagnostic per line; it exits nonzero when any
// document has an error-severity finding. See internal/lint for the
// diagnostic code table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/modelio"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relcli:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "lint" {
		return runLint(args[1:], stdin, stdout)
	}
	fs := flag.NewFlagSet("relcli", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the JSON model (default: stdin)")
	asJSON := fs.Bool("json", false, "emit results as JSON instead of text")
	asDOT := fs.Bool("dot", false, "emit the model structure as Graphviz DOT (ctmc/spn)")
	preflight := fs.Bool("preflight", false, "lint the model and refuse to solve on errors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spec, err := modelio.Parse(in)
	if err != nil {
		return err
	}
	if *asDOT {
		return modelio.WriteDOT(spec, stdout)
	}
	results, err := modelio.SolveWithOptions(spec, modelio.SolveOptions{Preflight: *preflight})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	_, err = io.WriteString(stdout, modelio.Render(spec.Name, results))
	return err
}

// lintFileReport is one document's findings in the -json output.
type lintFileReport struct {
	File        string            `json:"file"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

// runLint implements the lint subcommand: statically check one or more
// model documents (or stdin when no files are given).
func runLint(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli lint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()

	var reports []lintFileReport
	if len(files) == 0 {
		_, ds := modelio.LintDocument(stdin)
		reports = append(reports, lintFileReport{File: "<stdin>", Diagnostics: ds})
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, ds := modelio.LintDocument(f)
		f.Close()
		reports = append(reports, lintFileReport{File: path, Diagnostics: ds})
	}

	bad := 0
	for _, r := range reports {
		if lint.HasErrors(r.Diagnostics) {
			bad++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		total := 0
		for _, r := range reports {
			for _, d := range r.Diagnostics {
				fmt.Fprintf(stdout, "%s: %s\n", r.File, d)
				total++
			}
		}
		if total == 0 {
			fmt.Fprintf(stdout, "%d model(s) clean\n", len(reports))
		}
	}
	if bad > 0 {
		return fmt.Errorf("lint: %d of %d model(s) have errors", bad, len(reports))
	}
	return nil
}
