// Command relcli solves reliability/availability models described in JSON.
//
// Usage:
//
//	relcli [solve] -model system.json [-json] [-preflight]
//	relcli solve [-trace] [-trace-json] [-metrics] [-pprof addr] model.json
//	relcli solve [-timeout 30s] [-rails strict|warn|off] model.json
//	relcli solve [-log text|json] [-log-level debug] model.json
//	relcli serve [-addr 127.0.0.1:8080] [-log json] [-max-inflight 8] [-timeout 30s]
//	relcli serve [-ui=false] [-trace-store-size 256] [-bench BENCH_solvers.json]
//	relcli serve [-queue-depth 16] [-queue-wait 1s] [-breaker-threshold 5]
//	relcli serve [-breaker-cooldown 15s] [-failpoints 'name:spec;name:spec']
//	relcli serve [-max-body 8388608]
//	relcli chaos [-requests 200] [-swarm 8] [-seed 42] [-failpoints schedule]
//	cat system.json | relcli [-json]
//	relcli lint [-json] model.json [model.json ...]
//	relcli analyze [-json] model.json [model.json ...]
//
// The input format is documented in internal/modelio and README.md; it
// covers reliability block diagrams, fault trees, CTMCs, reliability
// graphs, and stochastic Petri nets with per-model measure selection.
//
// The optional solve subcommand is the default action spelled out; it
// additionally accepts the model path as a positional argument. The
// observability flags hang off it: -trace prints an indented solver span
// tree to stderr, -trace-json replaces the stdout report with a JSON
// document {"results": …, "trace": …} carrying the nested spans and
// per-iteration residuals, -metrics prints a one-line trace summary plus
// the relscope metric registry in Prometheus text format to stderr, -log
// emits structured slog events per span (and per iteration at -log-level
// debug), and -pprof addr serves net/http/pprof, expvar, and /metrics for
// the duration of the solve.
//
// The serve subcommand turns the same pipeline into a long-running HTTP
// service: POST /solve takes a model document and returns {model,
// results} (add ?trace=1 for the span tree), GET /metrics exposes the
// relscope registry for scraping, GET /healthz reports liveness as JSON
// (uptime, in-flight solves, trace-store occupancy), and /debug/pprof/
// plus /debug/vars mirror the standalone debug server. It drains
// gracefully on SIGINT/SIGTERM (healthz reports "draining" with 503
// while requests finish); solves still running after -grace are
// canceled through the guard context plumbing.
//
// The serve layer is crash-only (see the README's Resilience section):
// a bounded admission queue sheds load with 429 and capacity-timeouts
// with 503 — both with Retry-After and the model hash — per-model-class
// circuit breakers short-circuit to degraded bounds-only answers for
// rbd/fault-tree models, and per-request panic isolation turns crashes
// into typed 500s. The chaos subcommand boots this stack with a seeded
// failpoint schedule (internal/failpoint, also armable via -failpoints
// or $RELFAIL) and drives a client swarm through it, asserting typed
// outcomes, finite results, breaker open/re-close, and goroutine
// hygiene; it prints a JSON report and exits nonzero on any violation.
//
// Every completed /solve and /analyze request is retained in a bounded
// in-memory trace store (-trace-store-size, default 256, oldest
// evicted first) behind the embedded reldash dashboard: GET /ui lists
// retained traces with filters and metric highlights, /ui/trace/{id}
// shows one solve's span tree with residual-convergence sparklines, and
// the JSON APIs /api/traces, /api/traces/{id}, /api/metrics, /api/bench
// (the committed baseline named by -bench), and /api/summary back it.
// Disable the whole surface with -ui=false. See internal/reldash.
//
// The lint subcommand statically checks model documents without solving
// them, printing one diagnostic per line; it exits nonzero when any
// document has an error-severity finding. See internal/lint for the
// diagnostic code table.
//
// The analyze subcommand computes the static structural report of ctmc
// documents (SCC condensation, stiffness, lumpability, solver hint — see
// internal/relstruct) alongside the lint findings; -json emits the full
// StructReport. Non-ctmc documents are reported as skipped. The serve
// subcommand exposes the same analysis as POST /analyze.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/modelio"
	"repro/internal/obs"
)

// stderr is the diagnostic stream; a variable so tests can capture it.
var stderr io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relcli:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "lint" {
		return runLint(args[1:], stdin, stdout)
	}
	if len(args) > 0 && args[0] == "analyze" {
		return runAnalyze(args[1:], stdin, stdout)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "chaos" {
		return runChaos(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "solve" {
		args = args[1:]
	}
	fs := flag.NewFlagSet("relcli", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the JSON model (default: stdin)")
	asJSON := fs.Bool("json", false, "emit results as JSON instead of text")
	asDOT := fs.Bool("dot", false, "emit the model structure as Graphviz DOT (ctmc/spn)")
	preflight := fs.Bool("preflight", false, "lint the model and refuse to solve on errors")
	traceText := fs.Bool("trace", false, "print the solver span tree to stderr")
	traceJSON := fs.Bool("trace-json", false, "emit {results, trace} as JSON on stdout")
	metricsFlag := fs.Bool("metrics", false, "print a trace summary and the relscope metric registry (Prometheus text) to stderr")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address while solving")
	timeout := fs.Duration("timeout", 0, "abort the solve after this duration (0 disables)")
	rails := fs.String("rails", "", "numerical guard-rail strictness: strict, warn (default), or off")
	logFormat := fs.String("log", "", "emit structured solve logs on stderr: text or json")
	logLevel := fs.String("log-level", "info", "log level for -log (debug adds per-iteration convergence events)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" && fs.NArg() > 0 {
		*modelPath = fs.Arg(0)
	}
	in := stdin
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spec, err := modelio.Parse(in)
	if err != nil {
		return err
	}
	if *asDOT {
		return modelio.WriteDOT(spec, stdout)
	}
	if *pprofAddr != "" {
		srv, err := obs.ServeDebug(*pprofAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "relcli: pprof/expvar at http://%s/debug/pprof/\n", srv.Addr)
	}
	opts := modelio.SolveOptions{
		Preflight: *preflight,
		Timeout:   *timeout,
		Rails:     guard.Strictness(*rails),
	}
	rootName := spec.Name
	if rootName == "" {
		rootName = "solve"
	}
	var tr *obs.Trace
	var recs []obs.Recorder
	if *traceText || *traceJSON || *metricsFlag {
		tr = obs.NewTrace(rootName)
		recs = append(recs, tr)
	}
	if *metricsFlag {
		// The same registry backs /metrics in relcli serve and the debug
		// server, so the one-shot dump and the scrape endpoint share both
		// the numbers and the formatting path.
		recs = append(recs, obs.NewMetricsRecorder(metrics.Default(), rootName))
	}
	if *logFormat != "" {
		logger, err := newSlogLogger(*logFormat, *logLevel, stderr)
		if err != nil {
			return err
		}
		recs = append(recs, obs.NewSlogRecorder(logger))
	}
	opts.Recorder = obs.Multi(recs...)
	results, err := modelio.SolveWithOptions(spec, opts)
	if tr != nil {
		// Emit whatever was traced even when the solve failed — the partial
		// trace is exactly what diagnoses a non-converging solver.
		if *traceText {
			if werr := tr.WriteText(stderr); werr != nil {
				return werr
			}
		}
		if *metricsFlag {
			s := tr.Summary()
			fmt.Fprintf(stderr, "relcli: spans=%d iterations=%d wall=%s solver=%s\n",
				s.Spans, s.Iterations, time.Duration(s.WallNS), s.Solver)
			if werr := metrics.Default().WritePrometheus(stderr); werr != nil {
				return werr
			}
		}
	}
	if err != nil {
		return err
	}
	if *traceJSON {
		doc := struct {
			Results []modelio.Result `json:"results"`
			Trace   *obs.Span        `json:"trace"`
		}{Results: results, Trace: tr.Finish()}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	_, err = io.WriteString(stdout, modelio.Render(spec.Name, results))
	return err
}

// lintFileReport is one document's findings in the -json output.
type lintFileReport struct {
	File        string            `json:"file"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

// runLint implements the lint subcommand: statically check one or more
// model documents (or stdin when no files are given).
func runLint(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli lint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()

	var reports []lintFileReport
	if len(files) == 0 {
		_, ds := modelio.LintDocument(stdin)
		sortByCodePath(ds)
		reports = append(reports, lintFileReport{File: "<stdin>", Diagnostics: ds})
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, ds := modelio.LintDocument(f)
		f.Close()
		sortByCodePath(ds)
		reports = append(reports, lintFileReport{File: path, Diagnostics: ds})
	}

	bad := 0
	for _, r := range reports {
		if lint.HasErrors(r.Diagnostics) {
			bad++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		total := 0
		for _, r := range reports {
			for _, d := range r.Diagnostics {
				fmt.Fprintf(stdout, "%s: %s\n", r.File, d)
				total++
			}
		}
		if total == 0 {
			fmt.Fprintf(stdout, "%d model(s) clean\n", len(reports))
		}
	}
	if bad > 0 {
		return fmt.Errorf("lint: %d of %d model(s) have errors", bad, len(reports))
	}
	return nil
}
