package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// newDashMux builds a serve mux with the dashboard mounted and two
// solves already retained: repairfarm.json (t1, pinned SOR with
// per-iteration residuals) and lumpable.json (t2, exercises the
// structural-analysis attrs and automatic lumping).
func newDashMux(t *testing.T) *http.ServeMux {
	t.Helper()
	mux := mustServeMux(t, serveConfig{
		Registry:       metrics.NewRegistry(),
		MaxInflight:    2,
		UI:             true,
		TraceStoreSize: 8,
		BenchPath:      filepath.Join("..", "..", "BENCH_solvers.json"),
		CorrSeed:       1, // pinned so corr IDs land in the goldens verbatim
	})
	for _, m := range []string{"repairfarm.json", "lumpable.json"} {
		if w := postModel(t, mux, filepath.Join("..", "..", "models", m), ""); w.Code != http.StatusOK {
			t.Fatalf("POST /solve %s: status %d: %s", m, w.Code, w.Body.String())
		}
	}
	return mux
}

// The dashboard scrubbers blank every timing-dependent quantity so the
// goldens lock structure — page layout, span nesting, attribute keys,
// JSON schema — rather than wall clocks. Residuals, iteration counts,
// solver choices, and the committed bench medians are deterministic and
// stay un-scrubbed.
var (
	dashWallHTMLRE = regexp.MustCompile(`[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?ms`)
	dashTimeRE     = regexp.MustCompile(`\d{4}-\d{2}-\d{2}T[0-9:.]+(?:Z|[+-]\d{2}:\d{2})`)
	dashWallJSONRE = regexp.MustCompile(`"(wall_ns|wall_ms|uptime_s|value|sum)": [0-9.e+-]+`)
	dashStartRE    = regexp.MustCompile(`"start": "[^"]*"`)
	dashBucketsRE  = regexp.MustCompile(`"buckets": \[[^\]]*\]`)
)

func scrubDash(s string) string {
	s = dashWallHTMLRE.ReplaceAllString(s, "Xms")
	s = dashTimeRE.ReplaceAllString(s, "TS")
	s = dashWallJSONRE.ReplaceAllString(s, `"$1": 0`)
	s = dashStartRE.ReplaceAllString(s, `"start": "TS"`)
	return dashBucketsRE.ReplaceAllString(s, `"buckets": []`)
}

// TestServeDashboardGolden locks every dashboard route — the two HTML
// pages and each JSON API — after solving both bundled models. Any
// change to a template, the trace-record schema, or the snapshot shape
// shows up as a diff here.
func TestServeDashboardGolden(t *testing.T) {
	mux := newDashMux(t)
	for _, tc := range []struct {
		name, path, contains string
	}{
		{"ui_index", "/ui", "/ui/trace/t2"},
		{"ui_trace_repairfarm", "/ui/trace/t1", "linalg.sor"},
		{"ui_trace_lumpable", "/ui/trace/t2", "lump_ratio"},
		{"api_traces", "/api/traces", `"retained": 2`},
		{"api_trace", "/api/traces/t1", `"trace"`},
		{"api_metrics", "/api/metrics", "relscope_solver_wall_seconds"},
		{"api_bench", "/api/bench", `"median_ms"`},
		{"api_summary", "/api/summary", `"requests": 2`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, tc.path, nil)
			w := httptest.NewRecorder()
			mux.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("GET %s: status %d: %s", tc.path, w.Code, w.Body.String())
			}
			got := scrubDash(w.Body.String())
			if !strings.Contains(got, tc.contains) {
				t.Errorf("GET %s missing %q:\n%s", tc.path, tc.contains, got)
			}
			golden := filepath.Join("testdata", "dash_"+tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("GET %s drifted from %s; rerun with -update if intended.\ngot:\n%s", tc.path, golden, got)
			}
		})
	}
}

// TestServeUIDisabled checks -ui=false keeps the dashboard off the mux
// while the solve routes keep working.
func TestServeUIDisabled(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})
	for _, path := range []string{"/ui", "/api/traces", "/api/summary"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != http.StatusNotFound {
			t.Errorf("GET %s with UI disabled: status %d, want 404", path, w.Code)
		}
	}
	if w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), ""); w.Code != http.StatusOK {
		t.Errorf("solve with UI disabled: status %d", w.Code)
	}
}

// TestServeTraceStoreRetainsAnalyze checks /analyze requests land in the
// trace store as metadata-only records alongside solves.
func TestServeTraceStoreRetainsAnalyze(t *testing.T) {
	mux := newDashMux(t)
	body, err := os.ReadFile(filepath.Join("..", "..", "models", "absorbing.json"))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/analyze", strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /analyze: status %d", w.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/api/traces", nil)
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	out := w.Body.String()
	if !strings.Contains(out, `"endpoint": "analyze"`) ||
		!strings.Contains(out, "two-stage degradation to failure (mtta)") {
		t.Errorf("analyze request not retained in the trace store:\n%s", out)
	}
}
