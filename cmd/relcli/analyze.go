package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/modelio"
	"repro/internal/relstruct"
)

// analyzeFileReport is one document's structural analysis in the
// `relcli analyze` output.
type analyzeFileReport struct {
	File string `json:"file"`
	// Skipped explains why no report was produced (non-ctmc model types
	// have no transition graph to analyze). Skipping is not an error.
	Skipped string `json:"skipped,omitempty"`
	// Report is the static structural analysis of the chain.
	Report *relstruct.StructReport `json:"report,omitempty"`
	// Diagnostics are the full lint findings for the document (the STR
	// codes plus everything else the linter reports), sorted by code then
	// path for deterministic output.
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

// runAnalyze implements the analyze subcommand: statically analyze the
// structure of one or more ctmc documents (or stdin) without solving
// them. Exits nonzero when any document has an error-severity finding.
func runAnalyze(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli analyze", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the structural reports as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()

	var reports []analyzeFileReport
	if len(files) == 0 {
		reports = append(reports, analyzeDocument("<stdin>", stdin))
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		reports = append(reports, analyzeDocument(path, f))
		f.Close()
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, r := range reports {
			writeAnalyzeText(stdout, r)
		}
	}
	bad := 0
	for _, r := range reports {
		if lint.HasErrors(r.Diagnostics) {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("analyze: %d of %d model(s) have errors", bad, len(reports))
	}
	return nil
}

// analyzeDocument lints one document and, for ctmc models, attaches the
// structural report.
func analyzeDocument(name string, r io.Reader) analyzeFileReport {
	spec, ds := modelio.LintDocument(r)
	sortByCodePath(ds)
	out := analyzeFileReport{File: name, Diagnostics: ds}
	if spec == nil {
		out.Skipped = "document did not parse"
		return out
	}
	if spec.Type != "ctmc" || spec.CTMC == nil {
		out.Skipped = fmt.Sprintf("structural analysis applies to ctmc models (type %q)", spec.Type)
		return out
	}
	rep, err := modelio.StructReport(spec.CTMC)
	if err != nil {
		out.Skipped = fmt.Sprintf("analysis failed: %v", err)
		return out
	}
	out.Report = rep
	return out
}

// writeAnalyzeText renders one report for terminals.
func writeAnalyzeText(w io.Writer, r analyzeFileReport) {
	if r.Skipped != "" {
		fmt.Fprintf(w, "%s: skipped: %s\n", r.File, r.Skipped)
	} else if rep := r.Report; rep != nil {
		shape := "reducible"
		if rep.Irreducible {
			shape = "irreducible"
		}
		fmt.Fprintf(w, "%s: %d states, %d transitions, %s (%d recurrent class(es), %d transient state(s), %d component(s))\n",
			r.File, rep.States, rep.Transitions, shape,
			rep.RecurrentClasses, rep.TransientStates, rep.Components)
		if len(rep.AbsorbingStates) > 0 {
			fmt.Fprintf(w, "%s: absorbing: %s\n", r.File, strings.Join(rep.AbsorbingStates, ", "))
		}
		if rep.Stiffness.Ratio > 0 {
			fmt.Fprintf(w, "%s: rates %.3g..%.3g (spread %.3g, within-class %.3g, stiff=%v)\n",
				r.File, rep.Stiffness.RateMin, rep.Stiffness.RateMax,
				rep.Stiffness.Ratio, rep.Stiffness.MaxClassRatio, rep.Stiffness.Stiff)
		}
		if rep.Lumping.Lumpable {
			fmt.Fprintf(w, "%s: lumpable: %d states -> %d blocks (%.3gx reduction)\n",
				r.File, rep.States, rep.Lumping.Blocks, rep.Lumping.Ratio)
		}
		if rep.Hint.Method != "" || rep.Hint.Reduce != "" {
			fmt.Fprintf(w, "%s: hint: %s\n", r.File, hintLine(rep.Hint))
		}
	}
	for _, d := range r.Diagnostics {
		fmt.Fprintf(w, "%s: %s\n", r.File, d)
	}
}

// hintLine renders the solver hint for the text report.
func hintLine(h relstruct.Hint) string {
	var parts []string
	if h.Method != "" {
		parts = append(parts, "method "+h.Method)
	}
	if h.Reduce != "" {
		parts = append(parts, "reduce "+h.Reduce)
	}
	if h.Reason != "" {
		parts = append(parts, "("+h.Reason+")")
	}
	return strings.Join(parts, " ")
}

// sortByCodePath orders diagnostics by code then path, the deterministic
// ordering contract of the lint and analyze subcommands' output.
func sortByCodePath(ds []lint.Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		return ds[i].Path < ds[j].Path
	})
}
