package main

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/reldash"
	"repro/internal/slo"
)

// selfUpStates are the self-model states counted as "up": a saturated
// server is slow but answering; only an open breaker (or worse) is an
// availability loss from the client's point of view.
var selfUpStates = []string{"ok", "saturated"}

// selfPrediction pairs a self-model solve with the error that stopped
// it, so /api/slo can surface "warming up" honestly.
type selfPrediction struct {
	pred slo.Prediction
	err  error
}

// corrStamp resolves the request's correlation ID — a sanitized inbound
// X-Rel-Correlation-Id, or a freshly minted one — and stamps it on the
// response header before any body bytes are written.
func (s *solveServer) corrStamp(w http.ResponseWriter, r *http.Request) string {
	corr := obs.SanitizeCorr(r.Header.Get(obs.CorrHeader))
	if corr == "" {
		corr = s.corr.Next()
	}
	w.Header().Set(obs.CorrHeader, corr)
	return corr
}

// replyEv mirrors the response's identity fields into the wide event
// before handing off to reply, so every exit path of a handler feeds the
// same log line.
func (s *solveServer) replyEv(w http.ResponseWriter, ev *obs.WideEvent, code int, resp solveResponse) {
	if resp.Model != "" {
		ev.Model = resp.Model
	}
	if resp.ModelHash != "" {
		ev.ModelHash = resp.ModelHash
	}
	if resp.Code != "" {
		ev.Code = resp.Code
	}
	if resp.Degraded {
		ev.Degraded = true
	}
	s.reply(w, code, resp)
}

// observeSLO feeds one finished request into the SLO engine.
func (s *solveServer) observeSLO(route string, status int, latency time.Duration) {
	if s.slo != nil {
		s.slo.Observe(route, status, latency)
	}
}

// selfState classifies the server's current condition for the
// self-model CTMC: "open" when any circuit breaker is open or probing,
// "saturated" when every solve slot is busy or requests are queued,
// "ok" otherwise.
func (s *solveServer) selfState() string {
	for _, state := range s.brk.snapshot() {
		if state != "closed" {
			return "open"
		}
	}
	if int(s.inflight.Value()) >= s.cfg.MaxInflight || s.adm.queueLen() > 0 {
		return "saturated"
	}
	return "ok"
}

// sampleSelf records one self-observation at the given time.
func (s *solveServer) sampleSelf(at time.Time) {
	s.selfModel.Step(s.selfState(), at)
}

// predictSelf solves the fitted self-CTMC and caches the outcome for
// /api/slo and the dashboard.
func (s *solveServer) predictSelf(at time.Time) {
	pred, err := s.selfModel.Predict(selfUpStates, at)
	s.selfPred.Store(&selfPrediction{pred: pred, err: err})
}

// startBackground launches the self-model sampler and the continuous-
// profiling loop when configured. Both stop through stopBackground.
func (s *solveServer) startBackground() {
	if every := s.cfg.SelfModelEvery; every > 0 {
		s.bgWG.Add(1)
		go func() {
			defer s.bgWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			n := 0
			for {
				select {
				case <-s.stopBg:
					return
				case t := <-tick.C:
					s.sampleSelf(t)
					// Solving the fitted chain is ~microseconds at this
					// size, but there is no point re-predicting on every
					// sample.
					if n++; n%5 == 0 {
						s.predictSelf(t)
					}
				}
			}
		}()
	}
	if s.profiles != nil {
		every := s.cfg.ProfileEvery
		if every <= 0 {
			every = 30 * time.Second
		}
		// CPU captures block for their duration; keep them well inside
		// the cadence so the loop never falls behind.
		cpuD := every / 4
		if cpuD > 10*time.Second {
			cpuD = 10 * time.Second
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.bgWG.Add(2)
		go func() {
			defer s.bgWG.Done()
			<-s.stopBg
			cancel() // unblocks an in-flight CaptureCPU promptly
		}()
		go func() {
			defer s.bgWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-s.stopBg:
					return
				case <-tick.C:
					if _, err := s.profiles.CaptureHeap(); err != nil && s.cfg.Logger != nil {
						s.cfg.Logger.Warn("heap profile capture failed", "err", err)
					}
					if _, err := s.profiles.CaptureCPU(ctx, cpuD); err != nil && s.cfg.Logger != nil {
						s.cfg.Logger.Warn("cpu profile capture failed", "err", err)
					}
				}
			}
		}()
	}
}

// stopBackground stops the samplers and waits them out. Safe to call
// once; the server is not restartable afterwards.
func (s *solveServer) stopBackground() {
	close(s.stopBg)
	s.bgWG.Wait()
}

// sloPayload is the GET /api/slo reply.
type sloPayload struct {
	Enabled    bool                  `json:"enabled"`
	Objectives []slo.ObjectiveStatus `json:"objectives,omitempty"`
	// Measured is the availability-objective good fraction over the
	// longest window — the number Model.Availability is compared to.
	Measured *float64 `json:"measured_availability,omitempty"`
	// Model is the latest self-model prediction; ModelError names why
	// there is none yet (warming up, sampler disabled).
	Model      *slo.Prediction `json:"model,omitempty"`
	ModelError string          `json:"model_error,omitempty"`
}

// handleSLO answers GET /api/slo: objective statuses, error budgets,
// and the modeled-vs-measured availability pair.
func (s *solveServer) handleSLO(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	payload := sloPayload{Enabled: s.slo != nil}
	if s.slo != nil {
		payload.Objectives = s.slo.Status()
		for _, o := range payload.Objectives {
			if o.Kind == "availability" {
				m := o.Measured
				payload.Measured = &m
				break
			}
		}
	}
	if p := s.selfPred.Load(); p != nil {
		if p.err != nil {
			payload.ModelError = p.err.Error()
		} else {
			pred := p.pred
			payload.Model = &pred
		}
	} else if s.cfg.SelfModelEvery <= 0 {
		payload.ModelError = "self-model sampler disabled"
	} else {
		payload.ModelError = "self-model warming up"
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("slo response write failed", "err", err) //numvet:allow slog-corr status probes are uncorrelated
	}
}

// profilesPayload is the GET /api/profiles reply.
type profilesPayload struct {
	Enabled  bool               `json:"enabled"`
	Dir      string             `json:"dir,omitempty"`
	Profiles []obs.ProfileEntry `json:"profiles"`
}

// handleProfiles answers GET /api/profiles: the continuous-profiling
// ring listing, newest first.
func (s *solveServer) handleProfiles(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	payload := profilesPayload{Profiles: []obs.ProfileEntry{}}
	if s.profiles != nil {
		payload.Enabled = true
		payload.Dir = s.profiles.Dir()
		payload.Profiles = s.profiles.List()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("profiles response write failed", "err", err) //numvet:allow slog-corr status probes are uncorrelated
	}
}

// sloView flattens the SLO state for the dashboard panel.
func (s *solveServer) sloView() *reldash.SLOView {
	if s.slo == nil {
		return nil
	}
	view := &reldash.SLOView{}
	measuredSet := false
	for _, o := range s.slo.Status() {
		row := reldash.SLORow{
			Name:            o.Name,
			Kind:            o.Kind,
			Target:          o.Target,
			WorstBurn:       o.WorstBurn,
			BudgetRemaining: o.BudgetRemaining,
			Breaching:       o.Breaching,
			Breaches:        o.Breaches,
		}
		for _, w := range o.Windows {
			row.Windows = append(row.Windows, reldash.SLOWindow{
				Label:     w.Window,
				Burn:      w.BurnRate,
				Breaching: w.Breaching,
			})
		}
		if o.Kind == "availability" && !measuredSet {
			view.Measured = o.Measured
			measuredSet = true
		}
		view.Rows = append(view.Rows, row)
	}
	if p := s.selfPred.Load(); p != nil {
		if p.err != nil {
			view.ModeledErr = p.err.Error()
		} else {
			view.ModeledOK = true
			view.Modeled = p.pred.Availability
		}
	} else {
		view.ModeledErr = "self-model warming up"
	}
	return view
}

// profileRows flattens the profile ring for the dashboard trace pages.
func (s *solveServer) profileRows(start, end time.Time) []reldash.ProfileRow {
	if s.profiles == nil {
		return nil
	}
	var rows []reldash.ProfileRow
	for _, e := range s.profiles.Overlapping(start, end) {
		rows = append(rows, reldash.ProfileRow{
			Name:  e.Name,
			Kind:  e.Kind,
			Start: e.Start,
			Bytes: e.Bytes,
		})
	}
	return rows
}
