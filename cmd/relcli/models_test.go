package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBundledModels solves every model document shipped in models/ — an
// end-to-end integration test of the CLI surface over all five model
// families.
func TestBundledModels(t *testing.T) {
	dir := filepath.Join("..", "..", "models")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Fatalf("expected at least 5 bundled models, found %d", len(entries))
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		// broken_*.json are deliberately ill-formed lint fixtures.
		if strings.HasPrefix(e.Name(), "broken_") {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			path := filepath.Join(dir, name)
			if err := run([]string{"-model", path}, nil, &out); err != nil {
				t.Fatalf("relcli failed on %s: %v", name, err)
			}
			if out.Len() == 0 {
				t.Fatalf("no output for %s", name)
			}
			// Every bundled model has a name header.
			if !strings.Contains(out.String(), "model: ") {
				t.Errorf("%s output missing model header:\n%s", name, out.String())
			}
		})
	}
}
