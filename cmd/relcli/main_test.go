package main

import (
	"strings"
	"testing"
)

func TestRunFromStdin(t *testing.T) {
	doc := `{"type":"ctmc","ctmc":{
	  "transitions":[{"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],
	  "upStates":["up"],"measures":["availability"]}}`
	var out strings.Builder
	if err := run(nil, strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "availability") {
		t.Errorf("output: %q", out.String())
	}
	if !strings.Contains(out.String(), "0.990099") {
		t.Errorf("expected availability value in %q", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	doc := `{"type":"faulttree","faulttree":{
	  "events":[{"name":"a","prob":0.5}],
	  "top":{"event":"a"},"measures":["top"]}}`
	var out strings.Builder
	if err := run([]string{"-json"}, strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"measure": "top"`) {
		t.Errorf("json output: %q", out.String())
	}
}

func TestRunBadInput(t *testing.T) {
	if err := run(nil, strings.NewReader("{nope"), &strings.Builder{}); err == nil {
		t.Error("bad json accepted")
	}
	if err := run([]string{"-model", "/nonexistent/file.json"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunDOT(t *testing.T) {
	doc := `{"type":"ctmc","name":"duplex","ctmc":{
	  "transitions":[{"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],
	  "upStates":["up"],"measures":["availability"]}}`
	var out strings.Builder
	if err := run([]string{"-dot"}, strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `digraph "duplex"`) {
		t.Errorf("dot output: %q", out.String())
	}
	if !strings.Contains(out.String(), "lightcoral") {
		t.Errorf("down state not highlighted: %q", out.String())
	}
	// Unsupported type.
	rbdDoc := `{"type":"rbd","rbd":{"components":[{"name":"a","lifetime":{"kind":"exponential","rate":1}}],
	  "structure":{"comp":"a"},"measures":["mttf"]}}`
	if err := run([]string{"-dot"}, strings.NewReader(rbdDoc), &strings.Builder{}); err == nil {
		t.Error("rbd dot accepted")
	}
}
