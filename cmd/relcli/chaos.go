package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/slo"
)

// Chaos drill model documents: a mix chosen to route traffic through
// every failpoint-instrumented layer (SOR/GTH steady state, uniformized
// transient, BDD compilation, the budgeted fault-tree fallback chain)
// plus deliberately bad inputs that must stay 4xx under fire.
var chaosDocs = []struct {
	name string
	doc  string
}{
	{"ctmc-chain", `{"type":"ctmc","name":"chaos-chain","ctmc":{
		"transitions":[{"from":"a","to":"b","rate":1},{"from":"b","to":"c","rate":2},{"from":"c","to":"a","rate":3}],
		"measures":["steadystate"],"solver":"chain"}}`},
	{"ctmc-transient", `{"type":"ctmc","name":"chaos-transient","ctmc":{
		"transitions":[{"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],
		"initial":"up","upStates":["up"],"measures":["transient"],"time":10}}`},
	{"rbd", `{"type":"rbd","name":"chaos-rbd","rbd":{
		"components":[{"name":"a","lifetime":{"kind":"exponential","rate":0.001}},
			{"name":"b","lifetime":{"kind":"exponential","rate":0.001}}],
		"structure":{"op":"parallel","children":[{"comp":"a"},{"comp":"b"}]},
		"measures":["reliability"],"time":100}}`},
	{"faulttree-budget", `{"type":"faulttree","name":"chaos-ft","faulttree":{
		"events":[{"name":"e1","prob":0.01},{"name":"e2","prob":0.02},{"name":"e3","prob":0.03}],
		"top":{"op":"or","children":[{"op":"and","children":[{"event":"e1"},{"event":"e2"}]},{"event":"e3"}]},
		"measures":["top"],"bddBudget":2}}`},
	{"malformed", `{this is not json`},
	{"bad-measure", `{"type":"ctmc","name":"chaos-bad","ctmc":{
		"transitions":[{"from":"a","to":"b","rate":1}],"measures":["no-such-measure"]}}`},
}

// chaosSchedule builds the default seeded failpoint schedule. Every
// probabilistic trigger takes its stream from the run seed, so two runs
// with the same seed and request mix inject identical fault sequences.
func chaosSchedule(seed uint64) string {
	return strings.Join([]string{
		fmt.Sprintf("linalg.sor.sweep:p(0.02,%d)->error(chaos: sor sweep)", seed),
		"linalg.gth:1-in-13->error(chaos: gth)",
		fmt.Sprintf("markov.unif.step:p(0.02,%d)->error(chaos: unif step)", seed+1),
		"bdd.alloc:1-in-23->error(chaos: bdd alloc)",
		"modelio.build:1-in-17->error(chaos: build)",
		"modelio.parse:1-in-31->panic(chaos: parse)",
		"obs.store.put:1-in-11->panic(chaos: store)",
		fmt.Sprintf("linalg.power.step:p(0.05,%d)->delay(1ms)", seed+2),
	}, ";")
}

// chaosReport is the run summary printed as JSON.
type chaosReport struct {
	Requests       int            `json:"requests"`
	ByStatus       map[string]int `json:"by_status"`
	Degraded       int            `json:"degraded"`
	FailpointStats map[string]int `json:"failpoint_trips,omitempty"`
	BreakerCycleOK bool           `json:"breaker_cycle_ok"`
	// SLO captures the error-budget cycle: burn while faults were
	// injected, burn after a healthy recovery phase, and whether the
	// recovery strictly reduced it.
	SLO             chaosSLO `json:"slo"`
	GoroutinesStart int      `json:"goroutines_start"`
	GoroutinesEnd   int      `json:"goroutines_end"`
	Violations      []string `json:"violations,omitempty"`
}

// chaosSLO is the SLO leg of the chaos report.
type chaosSLO struct {
	BurnAtPeak      float64 `json:"burn_at_peak"`
	BudgetAtPeak    float64 `json:"budget_at_peak"`
	BurnRecovered   float64 `json:"burn_recovered"`
	RecoveryShrankB bool    `json:"recovery_shrank_burn"`
}

// allowedChaosStatus is the closed set of typed outcomes a request may
// end with under fault injection. Anything else — especially a hung
// request or a non-JSON 500 — is an invariant violation.
var allowedChaosStatus = map[int]bool{
	http.StatusOK:                  true,
	http.StatusBadRequest:          true,
	http.StatusUnprocessableEntity: true,
	http.StatusTooManyRequests:     true,
	http.StatusInternalServerError: true,
	http.StatusServiceUnavailable:  true,
	http.StatusGatewayTimeout:      true,
}

// runChaos implements the chaos subcommand: boot the real solve server
// with a seeded failpoint schedule, fire a client swarm at it, and
// assert the crash-only invariants — every request terminates with a
// typed outcome, no non-finite numbers escape, the circuit breaker
// opens and re-closes, and shutting the server down leaks no
// goroutines. Exits nonzero (error return) on any violation, so CI can
// gate on it.
func runChaos(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli chaos", flag.ContinueOnError)
	requests := fs.Int("requests", 200, "total solve requests in the swarm")
	swarm := fs.Int("swarm", 8, "concurrent swarm clients")
	seed := fs.Uint64("seed", 42, "seed for the probabilistic failpoint triggers")
	schedule := fs.String("failpoints", "", "failpoint schedule override (default: built-in seeded schedule)")
	killResume := fs.Bool("kill-resume", false, "run the job-durability drill instead of the solve swarm: kill a server mid-sweep, resume from the WAL, demand bit-identical quantiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *killResume {
		return chaosKillResume(*seed, stdout)
	}
	sched := *schedule
	if sched == "" {
		sched = chaosSchedule(*seed)
	}
	failpoint.Reset()
	defer failpoint.Reset()

	var mu sync.Mutex
	rep := chaosReport{ByStatus: make(map[string]int), FailpointStats: make(map[string]int)}
	violate := func(format string, a ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(rep.Violations) < 32 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, a...))
		}
	}

	_, mux, err := newSolveServer(serveConfig{
		Registry:    metrics.NewRegistry(),
		MaxInflight: 4, QueueDepth: 4, QueueWait: 250 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 300 * time.Millisecond,
		SolveTimeout: 5 * time.Second,
		Failpoints:   sched,
		UI:           false,
		SLOObjectives: []slo.Objective{
			{Name: "chaos-avail", Match: map[string]string{"route": "/solve"}, Target: 0.99},
		},
	})
	if err != nil {
		return err
	}
	rep.GoroutinesStart = runtime.NumGoroutine()
	ts := httptest.NewServer(mux)
	client := &http.Client{Timeout: 15 * time.Second}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *swarm; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				d := chaosDocs[i%len(chaosDocs)]
				chaosOneRequest(client, ts.URL, d.name, d.doc, violate, &mu, &rep)
				if i%10 == 0 {
					chaosHealthz(client, ts.URL, violate)
				}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	// Snapshot trip counts before the breaker drill re-arms the registry.
	for _, st := range failpoint.Stats() {
		if st.Trips > 0 {
			rep.FailpointStats[st.Name] = int(st.Trips)
		}
	}

	rep.BreakerCycleOK = chaosBreakerCycle(client, ts.URL, violate)
	rep.SLO = chaosSLOCycle(client, ts.URL, violate)

	ts.Close()
	// Goroutine-leak settle: the swarm, the server's connection
	// goroutines, and any solve workers must all unwind.
	deadline := time.Now().Add(3 * time.Second)
	for {
		rep.GoroutinesEnd = runtime.NumGoroutine()
		if rep.GoroutinesEnd <= rep.GoroutinesStart+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if rep.GoroutinesEnd > rep.GoroutinesStart+2 {
		violate("goroutine leak: %d at start, %d after shutdown", rep.GoroutinesStart, rep.GoroutinesEnd)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("chaos: %d invariant violation(s)", len(rep.Violations))
	}
	fmt.Fprintf(stdout, "chaos: %d requests, all invariants held\n", rep.Requests)
	return nil
}

// chaosOneRequest fires one solve and checks the per-response
// invariants: typed status, JSON body, error code on failures,
// Retry-After on backpressure, finite numbers on success.
func chaosOneRequest(client *http.Client, base, name, doc string, violate func(string, ...any), mu *sync.Mutex, rep *chaosReport) {
	resp, err := client.Post(base+"/solve", "application/json", strings.NewReader(doc))
	if err != nil {
		violate("%s: request did not terminate cleanly: %v", name, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		violate("%s: body read: %v", name, err)
		return
	}
	mu.Lock()
	rep.Requests++
	rep.ByStatus[fmt.Sprint(resp.StatusCode)]++
	mu.Unlock()

	if !allowedChaosStatus[resp.StatusCode] {
		violate("%s: untyped status %d: %.200s", name, resp.StatusCode, body)
		return
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		violate("%s: status %d body is not JSON: %.200s", name, resp.StatusCode, body)
		return
	}
	if resp.StatusCode != http.StatusOK && sr.Code == "" {
		violate("%s: status %d without a typed error code: %.200s", name, resp.StatusCode, body)
	}
	if resp.StatusCode == http.StatusTooManyRequests ||
		(resp.StatusCode == http.StatusServiceUnavailable && sr.Code != "canceled") {
		if resp.Header.Get("Retry-After") == "" {
			violate("%s: %d (%s) without Retry-After", name, resp.StatusCode, sr.Code)
		}
	}
	if resp.StatusCode == http.StatusOK {
		if sr.Degraded {
			mu.Lock()
			rep.Degraded++
			mu.Unlock()
		}
		for _, r := range sr.Results {
			if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
				violate("%s: non-finite result %s=%v escaped", name, r.Measure, r.Value)
			}
			if r.Bound != nil && (math.IsNaN(r.Bound.Lower) || math.IsNaN(r.Bound.Upper)) {
				violate("%s: non-finite bound on %s", name, r.Measure)
			}
		}
	}
}

// killResumeReport is the JSON summary of the durability drill.
type killResumeReport struct {
	Job           string   `json:"job"`
	Shards        int      `json:"shards"`
	DoneAtKill    int      `json:"done_at_kill"`
	Resumed       int      `json:"resumed_jobs"`
	ResumedShards int      `json:"resumed_shards"`
	Identical     bool     `json:"result_identical"`
	Violations    []string `json:"violations,omitempty"`
}

// killResumeDoc is the drill's sweep: 30 shards of 50 samples over the
// two-state pair model with a lognormally uncertain failure rate. The
// seed inside the document, not wall-clock anything, determines every
// sampled value — the whole point of the drill.
const killResumeDoc = `{
  "model": {"type":"ctmc","name":"kill-resume","ctmc":{"transitions":[
    {"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],
    "upStates":["up"],"measures":["availability"]}},
  "measure": "availability",
  "params": [{"name":"lambda","dist":{"kind":"lognormal","mu":-4.6,"sigma":0.3},"from":"up","to":"down"}],
  "samples": 1500,
  "shard_size": 50,
  "seed": %d
}`

// chaosKillResume is the durability drill behind `relcli chaos
// -kill-resume`: run a sweep job uninterrupted for reference, then run
// the same job on a checkpointing server that is killed mid-sweep (a
// stalled-shard failpoint guarantees the kill lands with work
// outstanding, and a checkpoint-write fault proves a lost checkpoint
// only costs recomputation), boot a fresh server over the same
// directory, and demand the resumed job finishes with bit-identical
// folded quantiles.
func chaosKillResume(seed uint64, stdout io.Writer) error {
	doc := fmt.Sprintf(killResumeDoc, seed)
	rep := killResumeReport{}
	violate := func(format string, a ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, a...))
	}
	failpoint.Reset()
	defer failpoint.Reset()

	client := &http.Client{Timeout: 30 * time.Second}
	postJob := func(base string) (jobResponse, int) {
		req, _ := http.NewRequest(http.MethodPost, base+"/jobs", strings.NewReader(doc))
		req.Header.Set("Idempotency-Key", "kill-resume-drill")
		resp, err := client.Do(req)
		if err != nil {
			violate("job submit failed: %v", err)
			return jobResponse{}, 0
		}
		defer resp.Body.Close()
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			violate("job submit reply is not JSON: %v", err)
		}
		return jr, resp.StatusCode
	}
	getJob := func(base, id string) jobResponse {
		resp, err := client.Get(base + "/jobs/" + id)
		if err != nil {
			violate("job poll failed: %v", err)
			return jobResponse{}
		}
		defer resp.Body.Close()
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			violate("job poll reply is not JSON: %v", err)
		}
		return jr
	}
	waitState := func(base, id string, want func(*jobResponse) bool, what string) jobResponse {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			jr := getJob(base, id)
			if jr.Job != nil && want(&jr) {
				return jr
			}
			time.Sleep(5 * time.Millisecond)
		}
		violate("timed out waiting for %s", what)
		return jobResponse{}
	}
	done := func(jr *jobResponse) bool { return jr.Job.State != "running" }

	// Reference: the same document, uninterrupted, in memory.
	_, refMux, err := newSolveServer(serveConfig{Registry: metrics.NewRegistry(), UI: false})
	if err != nil {
		return err
	}
	refTS := httptest.NewServer(refMux)
	refSub, _ := postJob(refTS.URL)
	if refSub.Job == nil {
		refTS.Close()
		return fmt.Errorf("chaos: reference submission failed: %v", rep.Violations)
	}
	ref := waitState(refTS.URL, refSub.Job.ID, done, "reference run")
	refTS.Close()
	if ref.Job == nil || ref.Job.State != "done" {
		return fmt.Errorf("chaos: reference run did not finish: %v", rep.Violations)
	}
	refResult, _ := json.Marshal(ref.Job.Result)

	// Victim: durable server. One shard stalls for 30s from the 8th
	// attempt on, guaranteeing the kill lands mid-sweep; one checkpoint
	// append is eaten to prove durability does not depend on every
	// checkpoint landing.
	dir, err := os.MkdirTemp("", "relcli-kill-resume-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := failpoint.Arm("jobs.shard", "after(8)->delay(30s)"); err != nil {
		return err
	}
	if err := failpoint.Arm("jobs.checkpoint.write", "times(1)->error(chaos: checkpoint eaten)"); err != nil {
		return err
	}
	victim, victimMux, err := newSolveServer(serveConfig{
		Registry: metrics.NewRegistry(), UI: false, JobsDir: dir, JobWorkers: 2,
	})
	if err != nil {
		return err
	}
	victimTS := httptest.NewServer(victimMux)
	sub, code := postJob(victimTS.URL)
	if sub.Job == nil {
		victimTS.Close()
		return fmt.Errorf("chaos: victim submission failed (%d): %v", code, rep.Violations)
	}
	rep.Job, rep.Shards = sub.Job.ID, sub.Job.Shards
	partial := waitState(victimTS.URL, sub.Job.ID,
		func(jr *jobResponse) bool { return jr.Job.DoneShards >= 3 }, "partial progress on the victim")
	if partial.Job != nil {
		rep.DoneAtKill = partial.Job.DoneShards
	}
	if rep.DoneAtKill >= rep.Shards {
		violate("victim finished before the kill; drill proves nothing")
	}
	// kill -9 equivalent: cancel every shard, record nothing terminal.
	victim.jobs.Abort()
	victimTS.Close()
	failpoint.Reset()

	// Survivor: fresh process over the same checkpoint directory.
	survivorReg := metrics.NewRegistry()
	survivor, survivorMux, err := newSolveServer(serveConfig{
		Registry: survivorReg, UI: false, JobsDir: dir,
	})
	if err != nil {
		return err
	}
	rep.Resumed = survivor.jobsResumed
	if rep.Resumed != 1 {
		violate("survivor resumed %d jobs, want 1", rep.Resumed)
	}
	survivorTS := httptest.NewServer(survivorMux)
	final := waitState(survivorTS.URL, sub.Job.ID, done, "resumed run")
	if final.Job != nil {
		if final.Job.State != "done" {
			violate("resumed job ended %s (%s), want done", final.Job.State, final.Job.Error)
		}
		if !final.Job.Resumed {
			violate("resumed job not flagged as resumed")
		}
		got, _ := json.Marshal(final.Job.Result)
		rep.Identical = string(got) == string(refResult)
		if !rep.Identical {
			violate("resumed result differs from uninterrupted run:\n%s\n%s", got, refResult)
		}
	}
	// Idempotent re-submission must still dedupe after recovery.
	if replay, code := postJob(survivorTS.URL); replay.Job == nil || replay.Job.ID != sub.Job.ID || code != http.StatusOK {
		violate("post-recovery idempotent replay: got %v (%d), want job %s with 200", replay.Job, code, sub.Job.ID)
	}
	survivorTS.Close()
	// How many shards the survivor pre-filled from the log (the eaten
	// checkpoint means this can trail the kill-time count by one).
	for _, f := range survivorReg.Snapshot() {
		if f.Name != "reljob_shards_total" {
			continue
		}
		for _, s := range f.Series {
			if len(s.LabelValues) == 1 && s.LabelValues[0] == "resumed" {
				rep.ResumedShards = int(s.Value)
			}
		}
	}
	if rep.ResumedShards == 0 {
		violate("survivor resumed no checkpointed shards; the WAL was empty at the kill")
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("chaos: %d durability violation(s)", len(rep.Violations))
	}
	fmt.Fprintf(stdout, "chaos: kill at %d/%d shards, resume produced bit-identical quantiles\n", rep.DoneAtKill, rep.Shards)
	return nil
}

// chaosSLOCycle asserts the error budget burned during the injected-
// failure phases (the swarm and the breaker drill both fed 5xx into
// the /solve objective) and that a healthy recovery phase strictly
// reduces the burn rate — the SLO engine must both detect damage and
// let go of it. Runs after chaosBreakerCycle so at least one 5xx burst
// is guaranteed regardless of the probabilistic schedule.
func chaosSLOCycle(client *http.Client, base string, violate func(string, ...any)) chaosSLO {
	out := chaosSLO{}
	readSLO := func(when string) (burn, budget float64, ok bool) {
		resp, err := client.Get(base + "/api/slo")
		if err != nil {
			violate("slo cycle: /api/slo unreachable %s: %v", when, err)
			return 0, 0, false
		}
		defer resp.Body.Close()
		var payload struct {
			Enabled    bool `json:"enabled"`
			Objectives []struct {
				Name            string  `json:"name"`
				WorstBurn       float64 `json:"worst_burn"`
				BudgetRemaining float64 `json:"budget_remaining"`
			} `json:"objectives"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			violate("slo cycle: /api/slo reply is not JSON %s: %v", when, err)
			return 0, 0, false
		}
		if !payload.Enabled || len(payload.Objectives) == 0 {
			violate("slo cycle: engine not enabled %s", when)
			return 0, 0, false
		}
		o := payload.Objectives[0]
		return o.WorstBurn, o.BudgetRemaining, true
	}

	burn, budget, ok := readSLO("after fault phase")
	if !ok {
		return out
	}
	out.BurnAtPeak, out.BudgetAtPeak = burn, budget
	if burn <= 0 {
		violate("slo cycle: no burn after injected failures (burn=%g)", burn)
		return out
	}

	// Recovery: healthy traffic dilutes the bad fraction in-window.
	const healthyDoc = `{"type":"ctmc","name":"slo-recovery","ctmc":{
		"transitions":[{"from":"u","to":"d","rate":1},{"from":"d","to":"u","rate":10}],
		"upStates":["u"],"measures":["availability"]}}`
	for i := 0; i < 100; i++ {
		resp, err := client.Post(base+"/solve", "application/json", strings.NewReader(healthyDoc))
		if err != nil {
			violate("slo cycle: recovery request failed: %v", err)
			return out
		}
		_, _ = io.Copy(io.Discard, resp.Body) //numvet:allow ignored-err drain before reuse; errors surface on the next request
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			violate("slo cycle: recovery request %d got status %d, want 200", i, resp.StatusCode)
			return out
		}
	}
	out.BurnRecovered, _, ok = readSLO("after recovery phase")
	if !ok {
		return out
	}
	out.RecoveryShrankB = out.BurnRecovered < out.BurnAtPeak
	if !out.RecoveryShrankB {
		violate("slo cycle: burn did not shrink under healthy traffic (%g -> %g)",
			out.BurnAtPeak, out.BurnRecovered)
	}
	return out
}

// chaosHealthz asserts the health endpoint stays answerable under load.
func chaosHealthz(client *http.Client, base string, violate func(string, ...any)) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		violate("healthz unreachable under load: %v", err)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		violate("healthz status %d under load", resp.StatusCode)
	}
}

// chaosBreakerCycle drives one full breaker open/re-close cycle against
// the live server: break the build layer until the ctmc breaker opens
// (503 breaker-open), clear the fault, wait out the cooldown, and
// demand the half-open probe restores 200s.
func chaosBreakerCycle(client *http.Client, base string, violate func(string, ...any)) bool {
	const doc = `{"type":"ctmc","name":"breaker-probe","ctmc":{
		"transitions":[{"from":"u","to":"d","rate":1},{"from":"d","to":"u","rate":10}],
		"upStates":["u"],"measures":["availability"]}}`
	post := func() (int, string) {
		resp, err := client.Post(base+"/solve", "application/json", strings.NewReader(doc))
		if err != nil {
			violate("breaker cycle: request failed: %v", err)
			return 0, ""
		}
		defer resp.Body.Close()
		var sr solveResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return resp.StatusCode, sr.Code
	}

	failpoint.Reset()
	if err := failpoint.Arm("modelio.build", "error(chaos breaker drill)"); err != nil {
		violate("breaker cycle: arm: %v", err)
		return false
	}
	// The swarm may have left the ctmc breaker partially charged (or
	// already open), so drive failures until it trips rather than
	// counting to the threshold from zero.
	opened := false
	for i := 0; i < 10 && !opened; i++ {
		switch code, typed := post(); {
		case code == http.StatusInternalServerError:
			// feeding the consecutive-failure count
		case code == http.StatusServiceUnavailable && typed == "breaker-open":
			opened = true
		default:
			violate("breaker cycle: faulted request %d got %d (%s), want 500 or breaker-open", i, code, typed)
			return false
		}
	}
	if !opened {
		violate("breaker cycle: breaker never opened under sustained faults")
		return false
	}
	failpoint.Reset()
	time.Sleep(350 * time.Millisecond) // outlast the 300ms cooldown
	if code, typed := post(); code != http.StatusOK {
		violate("breaker cycle: probe after cooldown got %d (%s), want 200", code, typed)
		return false
	}
	return true
}
