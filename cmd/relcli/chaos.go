package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
)

// Chaos drill model documents: a mix chosen to route traffic through
// every failpoint-instrumented layer (SOR/GTH steady state, uniformized
// transient, BDD compilation, the budgeted fault-tree fallback chain)
// plus deliberately bad inputs that must stay 4xx under fire.
var chaosDocs = []struct {
	name string
	doc  string
}{
	{"ctmc-chain", `{"type":"ctmc","name":"chaos-chain","ctmc":{
		"transitions":[{"from":"a","to":"b","rate":1},{"from":"b","to":"c","rate":2},{"from":"c","to":"a","rate":3}],
		"measures":["steadystate"],"solver":"chain"}}`},
	{"ctmc-transient", `{"type":"ctmc","name":"chaos-transient","ctmc":{
		"transitions":[{"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],
		"initial":"up","upStates":["up"],"measures":["transient"],"time":10}}`},
	{"rbd", `{"type":"rbd","name":"chaos-rbd","rbd":{
		"components":[{"name":"a","lifetime":{"kind":"exponential","rate":0.001}},
			{"name":"b","lifetime":{"kind":"exponential","rate":0.001}}],
		"structure":{"op":"parallel","children":[{"comp":"a"},{"comp":"b"}]},
		"measures":["reliability"],"time":100}}`},
	{"faulttree-budget", `{"type":"faulttree","name":"chaos-ft","faulttree":{
		"events":[{"name":"e1","prob":0.01},{"name":"e2","prob":0.02},{"name":"e3","prob":0.03}],
		"top":{"op":"or","children":[{"op":"and","children":[{"event":"e1"},{"event":"e2"}]},{"event":"e3"}]},
		"measures":["top"],"bddBudget":2}}`},
	{"malformed", `{this is not json`},
	{"bad-measure", `{"type":"ctmc","name":"chaos-bad","ctmc":{
		"transitions":[{"from":"a","to":"b","rate":1}],"measures":["no-such-measure"]}}`},
}

// chaosSchedule builds the default seeded failpoint schedule. Every
// probabilistic trigger takes its stream from the run seed, so two runs
// with the same seed and request mix inject identical fault sequences.
func chaosSchedule(seed uint64) string {
	return strings.Join([]string{
		fmt.Sprintf("linalg.sor.sweep:p(0.02,%d)->error(chaos: sor sweep)", seed),
		"linalg.gth:1-in-13->error(chaos: gth)",
		fmt.Sprintf("markov.unif.step:p(0.02,%d)->error(chaos: unif step)", seed+1),
		"bdd.alloc:1-in-23->error(chaos: bdd alloc)",
		"modelio.build:1-in-17->error(chaos: build)",
		"modelio.parse:1-in-31->panic(chaos: parse)",
		"obs.store.put:1-in-11->panic(chaos: store)",
		fmt.Sprintf("linalg.power.step:p(0.05,%d)->delay(1ms)", seed+2),
	}, ";")
}

// chaosReport is the run summary printed as JSON.
type chaosReport struct {
	Requests        int            `json:"requests"`
	ByStatus        map[string]int `json:"by_status"`
	Degraded        int            `json:"degraded"`
	FailpointStats  map[string]int `json:"failpoint_trips,omitempty"`
	BreakerCycleOK  bool           `json:"breaker_cycle_ok"`
	GoroutinesStart int            `json:"goroutines_start"`
	GoroutinesEnd   int            `json:"goroutines_end"`
	Violations      []string       `json:"violations,omitempty"`
}

// allowedChaosStatus is the closed set of typed outcomes a request may
// end with under fault injection. Anything else — especially a hung
// request or a non-JSON 500 — is an invariant violation.
var allowedChaosStatus = map[int]bool{
	http.StatusOK:                  true,
	http.StatusBadRequest:          true,
	http.StatusUnprocessableEntity: true,
	http.StatusTooManyRequests:     true,
	http.StatusInternalServerError: true,
	http.StatusServiceUnavailable:  true,
	http.StatusGatewayTimeout:      true,
}

// runChaos implements the chaos subcommand: boot the real solve server
// with a seeded failpoint schedule, fire a client swarm at it, and
// assert the crash-only invariants — every request terminates with a
// typed outcome, no non-finite numbers escape, the circuit breaker
// opens and re-closes, and shutting the server down leaks no
// goroutines. Exits nonzero (error return) on any violation, so CI can
// gate on it.
func runChaos(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("relcli chaos", flag.ContinueOnError)
	requests := fs.Int("requests", 200, "total solve requests in the swarm")
	swarm := fs.Int("swarm", 8, "concurrent swarm clients")
	seed := fs.Uint64("seed", 42, "seed for the probabilistic failpoint triggers")
	schedule := fs.String("failpoints", "", "failpoint schedule override (default: built-in seeded schedule)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sched := *schedule
	if sched == "" {
		sched = chaosSchedule(*seed)
	}
	failpoint.Reset()
	defer failpoint.Reset()

	var mu sync.Mutex
	rep := chaosReport{ByStatus: make(map[string]int), FailpointStats: make(map[string]int)}
	violate := func(format string, a ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(rep.Violations) < 32 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, a...))
		}
	}

	_, mux, err := newSolveServer(serveConfig{
		Registry:    metrics.NewRegistry(),
		MaxInflight: 4, QueueDepth: 4, QueueWait: 250 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 300 * time.Millisecond,
		SolveTimeout: 5 * time.Second,
		Failpoints:   sched,
		UI:           false,
	})
	if err != nil {
		return err
	}
	rep.GoroutinesStart = runtime.NumGoroutine()
	ts := httptest.NewServer(mux)
	client := &http.Client{Timeout: 15 * time.Second}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *swarm; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				d := chaosDocs[i%len(chaosDocs)]
				chaosOneRequest(client, ts.URL, d.name, d.doc, violate, &mu, &rep)
				if i%10 == 0 {
					chaosHealthz(client, ts.URL, violate)
				}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	// Snapshot trip counts before the breaker drill re-arms the registry.
	for _, st := range failpoint.Stats() {
		if st.Trips > 0 {
			rep.FailpointStats[st.Name] = int(st.Trips)
		}
	}

	rep.BreakerCycleOK = chaosBreakerCycle(client, ts.URL, violate)

	ts.Close()
	// Goroutine-leak settle: the swarm, the server's connection
	// goroutines, and any solve workers must all unwind.
	deadline := time.Now().Add(3 * time.Second)
	for {
		rep.GoroutinesEnd = runtime.NumGoroutine()
		if rep.GoroutinesEnd <= rep.GoroutinesStart+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if rep.GoroutinesEnd > rep.GoroutinesStart+2 {
		violate("goroutine leak: %d at start, %d after shutdown", rep.GoroutinesStart, rep.GoroutinesEnd)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("chaos: %d invariant violation(s)", len(rep.Violations))
	}
	fmt.Fprintf(stdout, "chaos: %d requests, all invariants held\n", rep.Requests)
	return nil
}

// chaosOneRequest fires one solve and checks the per-response
// invariants: typed status, JSON body, error code on failures,
// Retry-After on backpressure, finite numbers on success.
func chaosOneRequest(client *http.Client, base, name, doc string, violate func(string, ...any), mu *sync.Mutex, rep *chaosReport) {
	resp, err := client.Post(base+"/solve", "application/json", strings.NewReader(doc))
	if err != nil {
		violate("%s: request did not terminate cleanly: %v", name, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		violate("%s: body read: %v", name, err)
		return
	}
	mu.Lock()
	rep.Requests++
	rep.ByStatus[fmt.Sprint(resp.StatusCode)]++
	mu.Unlock()

	if !allowedChaosStatus[resp.StatusCode] {
		violate("%s: untyped status %d: %.200s", name, resp.StatusCode, body)
		return
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		violate("%s: status %d body is not JSON: %.200s", name, resp.StatusCode, body)
		return
	}
	if resp.StatusCode != http.StatusOK && sr.Code == "" {
		violate("%s: status %d without a typed error code: %.200s", name, resp.StatusCode, body)
	}
	if resp.StatusCode == http.StatusTooManyRequests ||
		(resp.StatusCode == http.StatusServiceUnavailable && sr.Code != "canceled") {
		if resp.Header.Get("Retry-After") == "" {
			violate("%s: %d (%s) without Retry-After", name, resp.StatusCode, sr.Code)
		}
	}
	if resp.StatusCode == http.StatusOK {
		if sr.Degraded {
			mu.Lock()
			rep.Degraded++
			mu.Unlock()
		}
		for _, r := range sr.Results {
			if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
				violate("%s: non-finite result %s=%v escaped", name, r.Measure, r.Value)
			}
			if r.Bound != nil && (math.IsNaN(r.Bound.Lower) || math.IsNaN(r.Bound.Upper)) {
				violate("%s: non-finite bound on %s", name, r.Measure)
			}
		}
	}
}

// chaosHealthz asserts the health endpoint stays answerable under load.
func chaosHealthz(client *http.Client, base string, violate func(string, ...any)) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		violate("healthz unreachable under load: %v", err)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		violate("healthz status %d under load", resp.StatusCode)
	}
}

// chaosBreakerCycle drives one full breaker open/re-close cycle against
// the live server: break the build layer until the ctmc breaker opens
// (503 breaker-open), clear the fault, wait out the cooldown, and
// demand the half-open probe restores 200s.
func chaosBreakerCycle(client *http.Client, base string, violate func(string, ...any)) bool {
	const doc = `{"type":"ctmc","name":"breaker-probe","ctmc":{
		"transitions":[{"from":"u","to":"d","rate":1},{"from":"d","to":"u","rate":10}],
		"upStates":["u"],"measures":["availability"]}}`
	post := func() (int, string) {
		resp, err := client.Post(base+"/solve", "application/json", strings.NewReader(doc))
		if err != nil {
			violate("breaker cycle: request failed: %v", err)
			return 0, ""
		}
		defer resp.Body.Close()
		var sr solveResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return resp.StatusCode, sr.Code
	}

	failpoint.Reset()
	if err := failpoint.Arm("modelio.build", "error(chaos breaker drill)"); err != nil {
		violate("breaker cycle: arm: %v", err)
		return false
	}
	// The swarm may have left the ctmc breaker partially charged (or
	// already open), so drive failures until it trips rather than
	// counting to the threshold from zero.
	opened := false
	for i := 0; i < 10 && !opened; i++ {
		switch code, typed := post(); {
		case code == http.StatusInternalServerError:
			// feeding the consecutive-failure count
		case code == http.StatusServiceUnavailable && typed == "breaker-open":
			opened = true
		default:
			violate("breaker cycle: faulted request %d got %d (%s), want 500 or breaker-open", i, code, typed)
			return false
		}
	}
	if !opened {
		violate("breaker cycle: breaker never opened under sustained faults")
		return false
	}
	failpoint.Reset()
	time.Sleep(350 * time.Millisecond) // outlast the 300ms cooldown
	if code, typed := post(); code != http.StatusOK {
		violate("breaker cycle: probe after cooldown got %d (%s), want 200", code, typed)
		return false
	}
	return true
}
