package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/slo"
)

// wide-event scrubbers: ts and wall are the only timing-dependent
// fields; everything else (corr under a pinned seed, model hash, trace
// ID, solver) is deterministic and stays locked by the golden.
var (
	wideTSRE   = regexp.MustCompile(`"ts":"[^"]*"`)
	wideWallRE = regexp.MustCompile(`"wall_ms":[0-9.e+-]+`)
)

func scrubWide(s string) string {
	s = wideTSRE.ReplaceAllString(s, `"ts":"TS"`)
	return wideWallRE.ReplaceAllString(s, `"wall_ms":0`)
}

// TestServeCorrWideEventTraceRoundTrip is the correlation acceptance
// lock: one solve emits one wide-event line whose corr matches the
// X-Rel-Correlation-Id response header, whose trace field names a
// retained trace, and whose corr resolves that same trace back through
// GET /api/traces?corr=. The scrubbed wide line is golden.
func TestServeCorrWideEventTraceRoundTrip(t *testing.T) {
	var wide bytes.Buffer
	mux := mustServeMux(t, serveConfig{
		Registry:   metrics.NewRegistry(),
		CorrSeed:   1,
		WideWriter: &wide,
		WideSample: 1,
		UI:         true, // /api/traces carries the corr join
	})

	w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), "")
	if w.Code != http.StatusOK {
		t.Fatalf("POST /solve: status %d: %s", w.Code, w.Body.String())
	}
	corr := w.Header().Get(obs.CorrHeader)
	if corr == "" {
		t.Fatal("solve response missing " + obs.CorrHeader)
	}

	line := strings.TrimSpace(wide.String())
	if strings.Count(line, "\n") != 0 || line == "" {
		t.Fatalf("expected exactly one wide-event line, got:\n%s", wide.String())
	}
	var ev obs.WideEvent
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("wide line is not JSON: %v\n%s", err, line)
	}
	if ev.Corr != corr {
		t.Errorf("wide event corr %q != response header %q", ev.Corr, corr)
	}
	if ev.Trace == "" {
		t.Fatalf("wide event carries no trace ID: %s", line)
	}
	if ev.Route != "/solve" || ev.Status != 200 || ev.Outcome != "ok" {
		t.Errorf("wide event route/status/outcome = %q/%d/%q", ev.Route, ev.Status, ev.Outcome)
	}

	// The join: corr from the log line resolves to the same trace.
	req := httptest.NewRequest(http.MethodGet, "/api/traces?corr="+ev.Corr, nil)
	tw := httptest.NewRecorder()
	mux.ServeHTTP(tw, req)
	var payload struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(tw.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 1 || payload.Traces[0].ID != ev.Trace || payload.Traces[0].Corr != ev.Corr {
		t.Fatalf("GET /api/traces?corr=%s returned %+v, want the single trace %q", ev.Corr, payload.Traces, ev.Trace)
	}

	got := scrubWide(line) + "\n"
	golden := filepath.Join("testdata", "wide_solve.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("wide event drifted from %s; rerun with -update if intended.\ngot:\n%s", golden, got)
	}
}

// TestServeCorrInboundHeader: a sane client-supplied correlation ID is
// honored end to end; a hostile one is replaced.
func TestServeCorrInboundHeader(t *testing.T) {
	var wide bytes.Buffer
	mux := mustServeMux(t, serveConfig{
		Registry:   metrics.NewRegistry(),
		CorrSeed:   1,
		WideWriter: &wide,
		WideSample: 1,
	})
	body, err := os.ReadFile(filepath.Join("..", "..", "models", "repairfarm.json"))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
	req.Header.Set(obs.CorrHeader, "client-supplied_01")
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if got := w.Header().Get(obs.CorrHeader); got != "client-supplied_01" {
		t.Errorf("inbound corr not honored: got %q", got)
	}
	if !strings.Contains(wide.String(), `"corr":"client-supplied_01"`) {
		t.Errorf("wide event does not carry inbound corr:\n%s", wide.String())
	}

	req = httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
	req.Header.Set(obs.CorrHeader, "evil\nheader{}")
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	got := w.Header().Get(obs.CorrHeader)
	if got == "" || strings.ContainsAny(got, "\n{}") {
		t.Errorf("hostile corr not replaced: %q", got)
	}
}

// TestServeAPISLO locks the /api/slo contract: enabled with the default
// objectives, per-window statuses after traffic, and an honest
// model_error while the self-model sampler is off.
func TestServeAPISLO(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})
	if w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), ""); w.Code != http.StatusOK {
		t.Fatalf("solve: status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/api/slo", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /api/slo: status %d", w.Code)
	}
	var payload struct {
		Enabled    bool                  `json:"enabled"`
		Objectives []slo.ObjectiveStatus `json:"objectives"`
		Measured   *float64              `json:"measured_availability"`
		ModelError string                `json:"model_error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Enabled || len(payload.Objectives) != 2 {
		t.Fatalf("payload %+v, want enabled with the 2 default objectives", payload)
	}
	if payload.Measured == nil || *payload.Measured != 1 {
		t.Errorf("measured availability = %v, want 1 after one good solve", payload.Measured)
	}
	if payload.ModelError != "self-model sampler disabled" {
		t.Errorf("model_error = %q", payload.ModelError)
	}
	for _, o := range payload.Objectives {
		if len(o.Windows) == 0 {
			t.Errorf("objective %s has no windows", o.Name)
		}
	}
}

// TestServeSLOOff: -slo off removes the engine — /api/slo reports
// disabled and /healthz drops the slo key (backward-compatible JSON).
func TestServeSLOOff(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry(), SLOPath: "off"})
	req := httptest.NewRequest(http.MethodGet, "/api/slo", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), `"enabled": false`) {
		t.Errorf("/api/slo with engine off: %s", w.Body.String())
	}
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if strings.Contains(w.Body.String(), `"slo"`) {
		t.Errorf("/healthz still carries slo with engine off: %s", w.Body.String())
	}
}

// TestServeHealthzSLOSummary: /healthz carries the probe-sized SLO
// digest (worst burn, budget remaining) once traffic has flowed, and
// stays parseable by pre-SLO clients (plain additive key).
func TestServeHealthzSLOSummary(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})
	if w := postModel(t, mux, filepath.Join("..", "..", "models", "repairfarm.json"), ""); w.Code != http.StatusOK {
		t.Fatalf("solve: status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", w.Code)
	}
	var resp struct {
		Status string `json:"status"`
		SLO    *struct {
			WorstBurn       float64 `json:"worst_burn"`
			BudgetRemaining float64 `json:"budget_remaining"`
			Breaching       bool    `json:"breaching"`
		} `json:"slo"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SLO == nil {
		t.Fatalf("/healthz missing slo summary: %s", w.Body.String())
	}
	if resp.SLO.Breaching || resp.SLO.WorstBurn != 0 || resp.SLO.BudgetRemaining != 1 {
		t.Errorf("healthy slo digest wrong: %+v", *resp.SLO)
	}
}

// TestServeSLOBurnOnFailures: server-side failures burn the budget —
// the engine sees the 5xx stream and /api/slo reports a breach once
// enough bad events accumulate (tiny objective keeps it fast).
func TestServeSLOBurnOnFailures(t *testing.T) {
	mux := mustServeMux(t, serveConfig{
		Registry: metrics.NewRegistry(),
		SLOObjectives: []slo.Objective{
			{Name: "strict", Match: map[string]string{"route": "/solve"}, Target: 0.99},
		},
	})
	// Malformed spec => 400: client errors must NOT burn the budget.
	for i := 0; i < 12; i++ {
		if w := postJSON(t, mux, `{"type":"nope"}`); w.Code != http.StatusBadRequest {
			t.Fatalf("bad spec: status %d", w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/api/slo", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	var p struct {
		Objectives []slo.ObjectiveStatus `json:"objectives"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Objectives) != 1 || p.Objectives[0].Breaching {
		t.Fatalf("client 4xx burned the budget: %+v", p.Objectives)
	}

	// Injected solver failures => 500s: these must burn.
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm("modelio.build", "error(injected)"); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(filepath.Join("..", "..", "models", "repairfarm.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The first failures are 500s; once the class breaker opens the rest
	// become 503 breaker-open — every one of them a budget-burning 5xx.
	for i := 0; i < 12; i++ {
		w := postJSON(t, mux, string(doc))
		if w.Code != http.StatusInternalServerError && w.Code != http.StatusServiceUnavailable {
			t.Fatalf("injected failure: status %d: %s", w.Code, w.Body.String())
		}
	}
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	o := p.Objectives[0]
	if !o.Breaching || o.WorstBurn <= 1 || o.BudgetRemaining >= 1 {
		t.Errorf("injected 5xx stream did not burn the budget: %+v", o)
	}
}

// TestServeAPIProfiles: with no -profile-dir the listing reports
// disabled; with one it lists captures (empty ring at boot).
func TestServeAPIProfiles(t *testing.T) {
	mux := mustServeMux(t, serveConfig{Registry: metrics.NewRegistry()})
	req := httptest.NewRequest(http.MethodGet, "/api/profiles", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), `"enabled": false`) {
		t.Errorf("/api/profiles without a dir: %s", w.Body.String())
	}

	dir := t.TempDir()
	s, mux2, err := newSolveServer(serveConfig{Registry: metrics.NewRegistry(), ProfileDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.stopBackground)
	if _, err := s.profiles.CaptureHeap(); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	mux2.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/api/profiles", nil))
	var p struct {
		Enabled  bool `json:"enabled"`
		Profiles []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"profiles"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Enabled || len(p.Profiles) != 1 || p.Profiles[0].Kind != "heap" {
		t.Errorf("/api/profiles listing wrong: %+v", p)
	}
}

// TestServeSelfModelPrediction drives the self-model sampler by hand
// (no wall-clock waits): synthetic ok/open dwell ratios produce a
// steady-state availability prediction on /api/slo.
func TestServeSelfModelPrediction(t *testing.T) {
	s, mux, err := newSolveServer(serveConfig{
		Registry:       metrics.NewRegistry(),
		SelfModelEvery: time.Hour, // sampler "on" for reporting; ticks never fire in-test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.stopBackground)
	base := time.Unix(1_700_000_000, 0)
	for cycle := 0; cycle < 4; cycle++ {
		s.selfModel.Step("ok", base)
		base = base.Add(9 * time.Second)
		s.selfModel.Step("open", base)
		base = base.Add(time.Second)
	}
	s.selfModel.Step("ok", base)
	s.predictSelf(base)

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	var p struct {
		Model *slo.Prediction `json:"model"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Model == nil {
		t.Fatalf("no self-model prediction on /api/slo: %s", w.Body.String())
	}
	if p.Model.Availability < 0.85 || p.Model.Availability > 0.95 {
		t.Errorf("predicted availability %g, want ~0.9 (9s up / 1s down cycles)", p.Model.Availability)
	}
	if p.Model.Solver != "gth" {
		t.Errorf("prediction solver %q", p.Model.Solver)
	}
}
