package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/modelio"
)

// admitVerdict classifies the outcome of asking for a solve slot.
type admitVerdict int

const (
	// admitOK: a slot was acquired; the caller must invoke the returned
	// release function exactly once.
	admitOK admitVerdict = iota
	// admitShed: both the solve slots and the wait queue are full — the
	// server is past saturation and sheds the request immediately (429).
	admitShed
	// admitTimeout: the request queued but no slot freed within the wait
	// budget (503).
	admitTimeout
	// admitCanceled: the client went away while queued.
	admitCanceled
)

// admission is the bounded two-stage admission controller in front of
// the solve pipeline: up to `inflight` requests solve concurrently, up
// to `depth` more wait in a queue for at most `wait`, and everything
// beyond that is shed immediately. Shedding at the door keeps the
// tail latency of admitted requests bounded — the alternative (an
// unbounded accept queue) converts overload into timeouts for everyone.
type admission struct {
	sem   chan struct{}
	queue chan struct{}
	wait  time.Duration
}

func newAdmission(inflight, depth int, wait time.Duration) *admission {
	return &admission{
		sem:   make(chan struct{}, inflight),
		queue: make(chan struct{}, depth),
		wait:  wait,
	}
}

// acquire asks for a solve slot. On admitOK the returned release frees
// the slot; for every other verdict release is nil.
func (a *admission) acquire(ctx context.Context) (func(), admitVerdict) {
	select {
	case a.sem <- struct{}{}:
		return a.release, admitOK
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, admitShed
	}
	defer func() { <-a.queue }()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case a.sem <- struct{}{}:
		return a.release, admitOK
	case <-timer.C:
		return nil, admitTimeout
	case <-done:
		return nil, admitCanceled
	}
}

func (a *admission) release() { <-a.sem }

// queueLen reports how many requests are currently waiting.
func (a *admission) queueLen() int { return len(a.queue) }

// queueCap reports the wait-queue capacity.
func (a *admission) queueCap() int { return cap(a.queue) }

// Breaker states. A breaker guards one model class (the spec type): K
// consecutive 5xx-class solve failures open it, after which requests of
// that class short-circuit to degraded bounds-only answers (or 503 when
// the class has no bounding path) until the cooldown elapses and a
// single half-open probe succeeds.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breakerSet holds the per-model-class circuit breakers.
type breakerSet struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to open; <=0 disables
	cooldown  time.Duration // open duration before half-open probing
	classes   map[string]*breakerClass
	onOpen    func(class string) // open-transition hook; runs under mu, must not re-enter
	now       func() time.Time   // injectable clock for tests
}

type breakerClass struct {
	state     int
	fails     int
	openUntil time.Time
	probing   bool // a half-open probe is in flight
}

func newBreakerSet(threshold int, cooldown time.Duration, onOpen func(string)) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		classes:   make(map[string]*breakerClass),
		onOpen:    onOpen,
		now:       time.Now,
	}
}

func (b *breakerSet) class(name string) *breakerClass {
	c := b.classes[name]
	if c == nil {
		c = &breakerClass{}
		b.classes[name] = c
	}
	return c
}

// allow reports whether a request of the class may run the exact solve
// path. probe marks the single half-open trial request whose outcome
// decides reopen-vs-close; the caller must pass it back to record.
func (b *breakerSet) allow(name string) (ok, probe bool) {
	if b.threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(name)
	switch c.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Before(c.openUntil) {
			return false, false
		}
		c.state = breakerHalfOpen
		c.probing = true
		return true, true
	default: // half-open
		if c.probing {
			return false, false
		}
		c.probing = true
		return true, true
	}
}

// record feeds one exact-path outcome back. failure means a 5xx-class
// result (the solver itself broke — bad documents do not count).
func (b *breakerSet) record(name string, probe, failure bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(name)
	if probe {
		c.probing = false
	}
	if !failure {
		c.state = breakerClosed
		c.fails = 0
		return
	}
	c.fails++
	if (probe && c.state == breakerHalfOpen) || c.fails >= b.threshold {
		c.state = breakerOpen
		c.openUntil = b.now().Add(b.cooldown)
		c.fails = 0
		if b.onOpen != nil {
			b.onOpen(name)
		}
	}
}

// snapshot returns the named state of every breaker that has tripped or
// probed (closed classes that never failed are omitted — the zero map
// means "all healthy").
func (b *breakerSet) snapshot() map[string]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]string, len(b.classes))
	for name, c := range b.classes {
		if c.state == breakerClosed && c.fails == 0 {
			continue
		}
		out[name] = breakerStateNames[c.state]
	}
	return out
}

// retrySecs reports how long a caller should wait before retrying a
// class whose breaker is open (minimum 1s).
func (b *breakerSet) retrySecs(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.classes[name]
	if c == nil || c.state != breakerOpen {
		return 1
	}
	secs := int(math.Ceil(b.now().Sub(c.openUntil).Seconds() * -1))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// modelHash fingerprints a request body so error responses and logs can
// be correlated to the exact document without echoing it back.
func modelHash(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:6])
}

// retryAfterSecs derives a Retry-After value from the observed p95
// solve wall time: a shed request behind queueLen waiters can expect
// roughly (queueLen+1) x p95 before capacity frees up. A cold histogram
// (no observations yet — Quantile answers NaN) or a degenerate
// zero/negative p95 says nothing about capacity, so the configured
// floor is the answer, and the result is clamped to [floor, 60] so a
// pathological tail still yields a sane header. floor < 1 means 1.
func retryAfterSecs(p95 float64, queueLen, floor int) int {
	if floor < 1 {
		floor = 1
	}
	if floor > 60 {
		floor = 60
	}
	if math.IsNaN(p95) || p95 <= 0 {
		return floor
	}
	secs := int(math.Ceil(p95 * float64(queueLen+1)))
	if secs < floor {
		secs = floor
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// errorCode maps the typed solve-failure taxonomy onto the stable
// machine-readable codes carried in JSON error bodies. The codes are
// the contract chaos assertions and clients key on — human-readable
// messages stay free to change.
func errorCode(err error) string {
	var lerr *lint.Error
	var ferr *failpoint.Error
	var ierr *guard.InternalError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, guard.ErrDeadline):
		return "deadline"
	case errors.Is(err, guard.ErrCanceled):
		return "canceled"
	case errors.As(err, &ferr):
		return "injected"
	case errors.As(err, &lerr), errors.Is(err, modelio.ErrBadSpec):
		return "bad-spec"
	case errors.As(err, &ierr):
		return "internal"
	default:
		return "internal"
	}
}

// maxBytesError reports whether the body read failed because the client
// exceeded the http.MaxBytesReader budget.
func maxBytesError(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
