package main

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

var _ types.Importer = (*loader)(nil)

// writeModule lays out a throwaway module on disk and returns its root.
// Fixture packages import nothing but the standard library, so the
// loader's stdlib importer covers everything.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// vetFixture analyzes the given package directories of a fixture module.
func vetFixture(t *testing.T, root string, patterns ...string) []Finding {
	t.Helper()
	findings, err := vetDirs(root, "tmpmod", patterns)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func rules(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

func TestFloatEqRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

func Cmp(a, b float64) bool { return a == b }

func CmpNeq(a, b float32) bool { return a != b }

func IntCmp(a, b int) bool { return a == b }

func Allowed(a, b float64) bool {
	return a == b //numvet:allow float-eq sentinel check
}
`,
	})
	fs := vetFixture(t, root, "./lib")
	if got := rules(fs)[ruleFloatEq]; got != 2 {
		t.Fatalf("want 2 float-eq findings (float64 ==, float32 !=), got %d: %v", got, fs)
	}
	for _, f := range fs {
		if f.Pos.Line != 3 && f.Pos.Line != 5 {
			t.Errorf("finding on unexpected line %d: %v", f.Pos.Line, f)
		}
	}
}

func TestPanicRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

func New(x float64) (float64, error) {
	if x < 0 {
		panic("negative")
	}
	return x, nil
}

// MustNew is the documented convenience wrapper; Must* names are exempt.
func MustNew(x float64) float64 {
	v, err := New(x)
	if err != nil {
		panic(err)
	}
	return v
}

// Shadowed calls a local function named panic, which is not the builtin.
func Shadowed() {
	panic := func(string) {}
	panic("fine")
}
`,
		"cmd/tool/main.go": `package main

func main() {
	panic("mains may panic")
}
`,
	})
	fs := vetFixture(t, root, "./lib", "./cmd/tool")
	if got := rules(fs)[rulePanic]; got != 1 {
		t.Fatalf("want exactly 1 panic finding (in New), got %d: %v", got, fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("panic finding at line %d, want 5: %v", fs[0].Pos.Line, fs[0])
	}
}

func TestIgnoredErrRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

import (
	"fmt"
	"strings"
)

func Fallible() error { return nil }

func Pair() (int, error) { return 0, nil }

func Clean() int { return 1 }

func Use(b *strings.Builder) {
	Fallible()            // finding: module API error discarded
	Pair()                // finding: tuple including error discarded
	Clean()               // no finding: no error in results
	fmt.Fprintln(b, "ok") // no finding: stdlib callee
	_ = Fallible()        // no finding: explicitly assigned away
}

func UseAllowed() {
	Fallible() //numvet:allow ignored-err best-effort cache warm
}
`,
	})
	fs := vetFixture(t, root, "./lib")
	if got := rules(fs)[ruleIgnoredErr]; got != 2 {
		t.Fatalf("want 2 ignored-err findings, got %d: %v", got, fs)
	}
	for _, f := range fs {
		if f.Pos.Line != 15 && f.Pos.Line != 16 {
			t.Errorf("finding on unexpected line %d: %v", f.Pos.Line, f)
		}
	}
}

func TestCrossPackageImportResolution(t *testing.T) {
	// The dep package must be loaded through the module-aware importer for
	// the caller package to type-check at all.
	root := writeModule(t, map[string]string{
		"dep/dep.go": `package dep

func Do() error { return nil }
`,
		"lib/lib.go": `package lib

import "tmpmod/dep"

func Use() {
	dep.Do()
}
`,
	})
	fs := vetFixture(t, root, "./lib")
	if got := rules(fs)[ruleIgnoredErr]; got != 1 {
		t.Fatalf("want 1 ignored-err finding via cross-package call, got %d: %v", got, fs)
	}
}

func TestTestFilesAreSkipped(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

func Sq(x float64) float64 { return x * x }
`,
		"lib/lib_test.go": `package lib

import "testing"

func TestSq(t *testing.T) {
	if Sq(2) == 4 { // float-eq is fine in tests; the file is never parsed
		t.Log("ok")
	}
}
`,
	})
	fs := vetFixture(t, root, "./lib")
	if len(fs) != 0 {
		t.Fatalf("test files must be excluded, got: %v", fs)
	}
}

func TestExpandPatternsRecursive(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go":          "package a\n",
		"a/b/b.go":        "package b\n",
		"a/testdata/x.go": "package x\n",
		"docs/readme.txt": "no go files here\n",
	})
	dirs, err := expandPatterns(root, []string{"./a/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("want 2 dirs (a, a/b; testdata skipped), got %v", dirs)
	}
}

func TestFindModule(t *testing.T) {
	root := writeModule(t, map[string]string{"a/a.go": "package a\n"})
	gotRoot, gotPath, err := findModule(filepath.Join(root, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "tmpmod" {
		t.Errorf("module path = %q, want tmpmod", gotPath)
	}
	resolvedRoot, _ := filepath.EvalSymlinks(root)
	resolvedGot, _ := filepath.EvalSymlinks(gotRoot)
	if resolvedGot != resolvedRoot {
		t.Errorf("module root = %q, want %q", gotRoot, root)
	}
}

// TestRepoIsClean pins the acceptance criterion: the repo's own library
// packages carry zero unacknowledged findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := vetDirs(modRoot, modPath, []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("numvet findings in ./internal/...:")
		for _, f := range fs {
			t.Errorf("  %s", f)
		}
	}
}

func TestTimeSleepRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

import "time"

func Wait() {
	time.Sleep(time.Second)
}

func Allowed() {
	time.Sleep(time.Millisecond) //numvet:allow time-sleep test-only shim
}

// Shadowed calls a method named Sleep on a local type, not time.Sleep.
type snoozer struct{}

func (snoozer) Sleep(d time.Duration) {}

func Local() {
	var s snoozer
	s.Sleep(time.Second)
}
`,
		"cmd/tool/main.go": `package main

import "time"

func main() {
	time.Sleep(time.Second) // mains may block
}
`,
	})
	fs := vetFixture(t, root, "./lib", "./cmd/tool")
	if got := rules(fs)[ruleTimeSleep]; got != 1 {
		t.Fatalf("want exactly 1 time-sleep finding (in Wait), got %d: %v", got, fs)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("time-sleep finding at line %d, want 6: %v", fs[0].Pos.Line, fs[0])
	}
}

func TestUnboundedLoopRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

func Spin() {
	for {
	}
}

func NoCond() {
	for i := 0; ; i++ {
		if i > 10 {
			break
		}
	}
}

func Bounded(n int) {
	for i := 0; i < n; i++ {
	}
}

func Ranged(xs []int) {
	for range xs {
	}
}

func Allowed() {
	for { //numvet:allow unbounded-loop breaks on sentinel
		break
	}
}
`,
		"cmd/tool/main.go": `package main

func main() {
	for { // event loops in mains are fine
		break
	}
}
`,
	})
	fs := vetFixture(t, root, "./lib", "./cmd/tool")
	if got := rules(fs)[ruleUnboundedLoop]; got != 2 {
		t.Fatalf("want 2 unbounded-loop findings (Spin, NoCond), got %d: %v", got, fs)
	}
	for _, f := range fs {
		if f.Pos.Line != 4 && f.Pos.Line != 9 {
			t.Errorf("finding on unexpected line %d: %v", f.Pos.Line, f)
		}
	}
}

func TestGoroutineNoCtxRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

import "context"

func Fire() {
	go func() {}()
}

func WithCtxArg(ctx context.Context) {
	go handle(ctx)
}

func WithCtxCapture(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func WithCtxParam(f func(context.Context)) {
	go func(ctx context.Context) {
		f(ctx)
	}(context.Background())
}

func Allowed() {
	go func() {}() //numvet:allow goroutine-no-ctx fire-and-forget metric flush
}

func handle(ctx context.Context) {}
`,
		"cmd/tool/main.go": `package main

func main() {
	go func() {}() // mains own their process lifetime
	select {}
}
`,
	})
	fs := vetFixture(t, root, "./lib", "./cmd/tool")
	if got := rules(fs)[ruleGoroutineNoCtx]; got != 1 {
		t.Fatalf("want exactly 1 goroutine-no-ctx finding (in Fire), got %d: %v", got, fs)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("goroutine-no-ctx finding at line %d, want 6: %v", fs[0].Pos.Line, fs[0])
	}
}

func TestDeferInLoopRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

import "sync"

func Leaky(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock()
	}
}

func LeakyFor(mu *sync.Mutex, n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock()
	}
}

// Hoisted defers inside a closure run per iteration; that is the fix the
// rule message recommends.
func Hoisted(mus []*sync.Mutex) {
	for _, mu := range mus {
		func() {
			mu.Lock()
			defer mu.Unlock()
		}()
	}
}

func Outside(mu *sync.Mutex, xs []int) {
	mu.Lock()
	defer mu.Unlock()
	for range xs {
	}
}

func Allowed(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock() //numvet:allow defer-in-loop bounded by the fixed handle count
	}
}

// Nested loops must not double-report the inner defer.
func Nested(mus [][]*sync.Mutex) {
	for _, row := range mus {
		for _, mu := range row {
			mu.Lock()
			defer mu.Unlock()
		}
	}
}
`,
	})
	fs := vetFixture(t, root, "./lib")
	if got := rules(fs)[ruleDeferInLoop]; got != 3 {
		t.Fatalf("want 3 defer-in-loop findings (Leaky, LeakyFor, Nested once), got %d: %v", got, fs)
	}
	for _, f := range fs {
		if f.Rule != ruleDeferInLoop {
			continue
		}
		if f.Pos.Line != 8 && f.Pos.Line != 15 && f.Pos.Line != 49 {
			t.Errorf("finding on unexpected line %d: %v", f.Pos.Line, f)
		}
	}
}

func TestStrayRecoverRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

func Risky() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	return nil
}

// Allowed documents why this recover may live outside guard.
func Allowed() {
	defer func() {
		recover() //numvet:allow stray-recover fuzz harness keeps the worker alive
	}()
}

// Shadowed calls a local function named recover, not the builtin.
func Shadowed() {
	recover := func() any { return nil }
	_ = recover()
}
`,
		// The guard package is where recovery is centralized; its own
		// recover() calls are the implementation, not strays.
		"guard/guard.go": `package guard

func RecoverPanic(err *error) {
	if r := recover(); r != nil {
		*err = nil
	}
}
`,
	})
	fs := vetFixture(t, root, "./lib", "./guard")
	if got := rules(fs)[ruleStrayRecover]; got != 1 {
		t.Fatalf("want exactly 1 stray-recover finding (in Risky), got %d: %v", got, fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("stray-recover finding at line %d, want 5: %v", fs[0].Pos.Line, fs[0])
	}
}

// TestNondeterminismRule pins the shard-execution purity rule: packages
// named uncertainty or jobs may not read the wall clock or draw from the
// globally seeded math/rand source; explicitly seeded sources and other
// packages are untouched.
func TestNondeterminismRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"jobs/jobs.go": `package jobs

import (
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now()
}

func Draw() float64 {
	return rand.Float64()
}

func Seeded(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

func Allowed() time.Time {
	return time.Now() //numvet:allow nondeterminism wall-clock bookkeeping only
}
`,
		// The same constructs outside a shard-execution package are fine.
		"other/other.go": `package other

import (
	"math/rand"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Draw() float64 { return rand.Float64() }
`,
	})
	fs := vetFixture(t, root, "./jobs", "./other")
	if got := rules(fs)[ruleNondet]; got != 2 {
		t.Fatalf("want 2 nondeterminism findings (Stamp, Draw in jobs), got %d: %v", got, fs)
	}
	for _, f := range fs {
		if f.Rule == ruleNondet && f.Pos.Line != 9 && f.Pos.Line != 13 {
			t.Errorf("nondeterminism finding on unexpected line %d: %v", f.Pos.Line, f)
		}
	}
}

func TestSlogCorrRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"cmd/srv/main.go": `package main

import (
	"log/slog"
	"net/http"
)

func main() {}

// handler logs without corr: flagged.
func handler(w http.ResponseWriter, r *http.Request) {
	slog.Info("request started")
	slog.Warn("odd input", "remote", r.RemoteAddr)
}

// correlated threads the ID through: clean.
func correlated(w http.ResponseWriter, r *http.Request) {
	corr := r.Header.Get("X-Rel-Correlation-Id")
	slog.Info("request started", "corr", corr)
	slog.LogAttrs(r.Context(), slog.LevelWarn, "odd", slog.String("corr", corr))
}

// closureInHandler: a literal inside a handler inherits the handler
// context (any-enclosing semantics) even without its own request param.
func closureInHandler(w http.ResponseWriter, r *http.Request) {
	defer func() {
		slog.Error("panic isolated")
	}()
}

// notAHandler has no *http.Request anywhere: the rule stays quiet.
func notAHandler() {
	slog.Info("background loop tick")
}

// allowed acknowledges the finding in place.
func allowed(w http.ResponseWriter, r *http.Request) {
	slog.Info("health probe") //numvet:allow slog-corr probes are uncorrelated
}

// methodValue: a *slog.Logger method without corr is flagged too.
func methodValue(l *slog.Logger, w http.ResponseWriter, r *http.Request) {
	l.Error("solve failed")
}
`,
		"lib/lib.go": `package lib

import "log/slog"

// Library packages are exempt: the rule targets the serve layer.
func Handlerish(h func(int), n int) {
	slog.Info("library log, no corr needed")
}
`,
	})
	fs := vetFixture(t, root, "./cmd/srv", "./lib")
	if got := rules(fs)[ruleSlogCorr]; got != 4 {
		t.Fatalf("want 4 slog-corr findings (2 in handler, 1 in closure, 1 method), got %d: %v", got, fs)
	}
	wantLines := map[int]bool{12: true, 13: true, 27: true, 43: true}
	for _, f := range fs {
		if f.Rule == ruleSlogCorr && !wantLines[f.Pos.Line] {
			t.Errorf("slog-corr finding on unexpected line %d: %v", f.Pos.Line, f)
		}
	}
}

// TestSlogCorrLogAttrsSlogString: slog.LogAttrs carries the key inside a
// slog.String("corr", ...) attr constructor — hasCorrKey sees only the
// call's direct args, so the nested literal must still satisfy the rule
// via the constructor's own argument position.
func TestSlogCorrClosurePopsScope(t *testing.T) {
	root := writeModule(t, map[string]string{
		"cmd/srv/main.go": `package main

import (
	"log/slog"
	"net/http"
)

func main() {}

// After a handler-literal closes, logging outside it is clean again.
func builder() {
	_ = func(w http.ResponseWriter, r *http.Request) {
		slog.Info("inside handler literal")
	}
	slog.Info("outside again: not a serve path")
}
`,
	})
	fs := vetFixture(t, root, "./cmd/srv")
	if got := rules(fs)[ruleSlogCorr]; got != 1 {
		t.Fatalf("want 1 slog-corr finding (inside the literal only), got %d: %v", got, fs)
	}
	if fs[0].Pos.Line != 13 {
		t.Errorf("finding at line %d, want 13 (inside the handler literal)", fs[0].Pos.Line)
	}
}
