package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The numerical- and robustness-hygiene rules this repo enforces on its
// library packages. Each finding names its rule so a same-line
// "//numvet:allow <rule> <reason>" comment can acknowledge it.
const (
	ruleFloatEq        = "float-eq"
	rulePanic          = "panic"
	ruleIgnoredErr     = "ignored-err"
	ruleTimeSleep      = "time-sleep"
	ruleUnboundedLoop  = "unbounded-loop"
	ruleGoroutineNoCtx = "goroutine-no-ctx"
	ruleDeferInLoop    = "defer-in-loop"
	ruleStrayRecover   = "stray-recover"
	ruleNondet         = "nondeterminism"
	ruleSlogCorr       = "slog-corr"
)

// shardExecPkgs are the packages whose results must be pure functions of
// their seeds — sharded sweep execution, where any wall-clock read or
// globally-seeded random draw silently breaks the resume-bit-identical
// contract. time.Now() and the global math/rand functions are flagged
// there; explicitly seeded sources (rand.New, rand.NewSource) are fine.
var shardExecPkgs = map[string]bool{
	"uncertainty": true,
	"jobs":        true,
}

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String formats the finding like a compiler diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// vetPackage runs the analyses over one type-checked package.
func vetPackage(fset *token.FileSet, files []*ast.File, info *types.Info, modPath string) []Finding {
	var findings []Finding
	for _, f := range files {
		allowed := allowMap(fset, f)
		v := &visitor{
			fset: fset, info: info, modPath: modPath,
			pkgName: f.Name.Name, allowed: allowed,
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			v.funcName = fn.Name.Name
			v.declIsHandler = v.hasRequestParam(fn.Type)
			v.stack = v.stack[:0]
			v.litHandlers = v.litHandlers[:0]
			ast.Inspect(fn.Body, v.inspect)
		}
		findings = append(findings, v.findings...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings
}

// allowMap collects "//numvet:allow <rule> [reason]" comments by line.
func allowMap(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//numvet:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if out[line] == nil {
				out[line] = map[string]bool{}
			}
			out[line][fields[0]] = true
		}
	}
	return out
}

// visitor applies the rules within one function body.
type visitor struct {
	fset     *token.FileSet
	info     *types.Info
	modPath  string
	pkgName  string
	funcName string
	allowed  map[int]map[string]bool
	findings []Finding
	// declIsHandler marks the current FuncDecl as an HTTP handler (has a
	// *http.Request parameter); stack mirrors ast.Inspect's traversal so
	// litHandlers — one entry per enclosing FuncLit — pops at the right
	// time. A slog call is "in a serve path" when the decl or ANY
	// enclosing literal is a handler.
	declIsHandler bool
	stack         []ast.Node
	litHandlers   []bool
}

// inHandler reports whether the visitor is currently inside an HTTP
// handler (the declaration itself or any enclosing function literal
// taking *http.Request).
func (v *visitor) inHandler() bool {
	if v.declIsHandler {
		return true
	}
	for _, h := range v.litHandlers {
		if h {
			return true
		}
	}
	return false
}

// report records a finding unless a same-line allow comment covers it.
func (v *visitor) report(pos token.Pos, rule, format string, args ...any) {
	p := v.fset.Position(pos)
	if v.allowed[p.Line][rule] {
		return
	}
	v.findings = append(v.findings, Finding{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

func (v *visitor) inspect(n ast.Node) bool {
	if n == nil {
		top := v.stack[len(v.stack)-1]
		v.stack = v.stack[:len(v.stack)-1]
		if _, ok := top.(*ast.FuncLit); ok {
			v.litHandlers = v.litHandlers[:len(v.litHandlers)-1]
		}
		return true
	}
	v.stack = append(v.stack, n)
	if lit, ok := n.(*ast.FuncLit); ok {
		v.litHandlers = append(v.litHandlers, v.hasRequestParam(lit.Type))
	}
	switch n := n.(type) {
	case *ast.BinaryExpr:
		if n.Op == token.EQL || n.Op == token.NEQ {
			if v.isFloat(n.X) || v.isFloat(n.Y) {
				v.report(n.OpPos, ruleFloatEq,
					"floating-point %s comparison; use core.AlmostEqual or restructure", n.Op)
			}
		}
	case *ast.ForStmt:
		// A condition-less loop in library code has no structural bound; it
		// must carry an allow comment naming why it terminates (rejection
		// sampling, explicit break on a counted budget, …).
		if n.Cond == nil && v.pkgName != "main" {
			v.report(n.For, ruleUnboundedLoop,
				"unbounded for-loop in library function %s; bound it or justify termination with an allow comment", v.funcName)
		}
		v.checkDeferInLoop(n.Body)
	case *ast.RangeStmt:
		v.checkDeferInLoop(n.Body)
	case *ast.GoStmt:
		// A goroutine launched from library code with no context.Context in
		// reach cannot be canceled; solver fan-out must thread one through
		// (or justify fire-and-forget with an allow comment).
		if v.pkgName != "main" && !v.mentionsContext(n.Call) {
			v.report(n.Go, ruleGoroutineNoCtx,
				"goroutine in library function %s has no context.Context in scope of the launch; thread one through for cancellation", v.funcName)
		}
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && isBuiltinPanic(id, v.info) {
			// A library package must return errors; panics are reserved
			// for Must* convenience constructors.
			if v.pkgName != "main" && !strings.HasPrefix(v.funcName, "Must") {
				v.report(n.Pos(), rulePanic,
					"panic in library function %s; return an error instead", v.funcName)
			}
		}
		if id, ok := n.Fun.(*ast.Ident); ok && isBuiltinRecover(id, v.info) {
			// Panic recovery is centralized in internal/guard
			// (RecoverPanic/Isolate) so every recovered panic becomes a
			// typed *guard.InternalError and is counted; a scattered
			// recover() silently swallows failures the chaos invariants
			// need to see.
			if v.pkgName != "guard" {
				v.report(n.Pos(), ruleStrayRecover,
					"recover() outside internal/guard in function %s; use guard.RecoverPanic or guard.Isolate so the panic stays typed and counted", v.funcName)
			}
		}
		// Blocking sleeps ignore cancellation; solvers must use a timer in
		// a select so a context can interrupt the wait.
		if v.pkgName != "main" && v.isTimeSleep(n) {
			v.report(n.Pos(), ruleTimeSleep,
				"time.Sleep in library function %s; use time.NewTimer with select so waits stay cancellable", v.funcName)
		}
		// Serve-path logging must carry the request's correlation ID so
		// every log line joins to its trace and wide event. The rule
		// fires only in main packages (the serve layer), only inside HTTP
		// handlers, and only on calls that resolve to log/slog.
		if v.pkgName == "main" && v.inHandler() {
			if name, ok := v.slogCall(n); ok && !hasCorrKey(n) {
				v.report(n.Pos(), ruleSlogCorr,
					"slog.%s in HTTP handler %s without a \"corr\" field; thread the correlation ID through (or justify with an allow comment)", name, v.funcName)
			}
		}
		if shardExecPkgs[v.pkgName] {
			if v.isTimeNow(n) {
				v.report(n.Pos(), ruleNondet,
					"time.Now in shard-execution function %s; results must be pure functions of the seed — pass timestamps in or justify with an allow comment", v.funcName)
			}
			if name, ok := v.globalRandCall(n); ok {
				v.report(n.Pos(), ruleNondet,
					"globally-seeded rand.%s in shard-execution function %s; draw from an explicitly seeded source (uncertainty.ShardRNG, rand.New) instead", name, v.funcName)
			}
		}
	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v.returnsError(call) && v.isModuleCall(call) {
			v.report(call.Pos(), ruleIgnoredErr,
				"result of %s includes an error that is discarded", callName(call))
		}
	}
	return true
}

// checkDeferInLoop flags defers placed directly inside a loop body: they
// pile up until the surrounding function returns, which in a solver's
// hot loop means unbounded memory and late cleanup. Defers inside
// function literals run at that literal's return and are fine; nested
// loops report their own bodies when the visitor reaches them.
func (v *visitor) checkDeferInLoop(body *ast.BlockStmt) {
	if v.pkgName == "main" || body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.DeferStmt:
			v.report(n.Defer, ruleDeferInLoop,
				"defer inside a loop in function %s runs only at function return; hoist it or wrap the body in a closure", v.funcName)
		}
		return true
	})
}

// mentionsContext reports whether any expression in the launched call —
// arguments, callee, or a function-literal body — has type
// context.Context. That covers the common shapes: passing a ctx
// argument, launching a method on a ctx-holding value, or a closure
// capturing ctx.
func (v *visitor) mentionsContext(call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isContextType(v.info.TypeOf(e)) {
			found = true
			return false
		}
		// A function literal whose parameters include a context counts even
		// though the parameter names are declarations, not expressions.
		if lit, ok := e.(*ast.FuncLit); ok && lit.Type.Params != nil {
			for _, field := range lit.Type.Params.List {
				if isContextType(v.info.TypeOf(field.Type)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isTimeSleep reports whether the call resolves to the standard library's
// time.Sleep (and not a method or local function sharing the name).
func (v *visitor) isTimeSleep(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	obj := v.info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "time"
}

// isTimeNow reports whether the call resolves to the standard library's
// time.Now.
func (v *visitor) isTimeNow(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return false
	}
	obj := v.info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// globalRandCall reports whether the call is a package-level math/rand
// (or math/rand/v2) function drawing from the process-global source.
// Constructors for explicitly seeded sources are exempt: determinism is
// exactly what they exist for.
func (v *visitor) globalRandCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := v.info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return "", false // a method on *rand.Rand draws from its own source
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return "", false
	}
	return fn.Name(), true
}

// hasRequestParam reports whether the function type takes *http.Request
// — the marker numvet uses for "this is an HTTP handler".
func (v *visitor) hasRequestParam(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		ptr, ok := v.info.TypeOf(field.Type).(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
			return true
		}
	}
	return false
}

// slogCall reports whether the call resolves to a log/slog logging
// function or *slog.Logger method (Info, Warn, Error, Debug, their
// *Context variants, Log, LogAttrs).
func (v *visitor) slogCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Debug", "Info", "Warn", "Error",
		"DebugContext", "InfoContext", "WarnContext", "ErrorContext",
		"Log", "LogAttrs":
	default:
		return "", false
	}
	obj := v.info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "log/slog" {
		return "", false
	}
	return sel.Sel.Name, true
}

// hasCorrKey reports whether the string literal "corr" — the attr key
// the serve layer threads correlation IDs under — appears anywhere in
// the call's arguments, including nested attr constructors like
// slog.String("corr", id).
func hasCorrKey(call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			lit, ok := n.(*ast.BasicLit)
			if ok && lit.Kind == token.STRING && lit.Value == `"corr"` {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// isFloat reports whether the expression has a floating-point type.
func (v *visitor) isFloat(e ast.Expr) bool {
	t := v.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isBuiltinPanic reports whether the identifier resolves to the builtin
// panic (and not a local function or variable shadowing the name).
func isBuiltinPanic(id *ast.Ident, info *types.Info) bool {
	if id.Name != "panic" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isBuiltinRecover reports whether the identifier resolves to the
// builtin recover.
func isBuiltinRecover(id *ast.Ident, info *types.Info) bool {
	if id.Name != "recover" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}

// errType is the universe error type.
var errType = types.Universe.Lookup("error").Type()

// returnsError reports whether the call's results include an error value.
func (v *visitor) returnsError(call *ast.CallExpr) bool {
	t := v.info.TypeOf(call)
	if t == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		return types.Identical(t, errType)
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErr(t)
	}
}

// isModuleCall reports whether the callee is defined inside this module —
// the rule targets the repo's own solver APIs, not fmt.Fprintf and
// friends whose errors are routinely irrelevant.
func (v *visitor) isModuleCall(call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = v.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = v.info.Uses[fun.Sel]
	default:
		return false
	}
	if obj == nil {
		return false
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	// Same package under analysis (its path is the module-relative import
	// path) or any package below the module path.
	return pkg.Path() == v.modPath || strings.HasPrefix(pkg.Path(), v.modPath+"/")
}

// callName renders the callee for a message.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
