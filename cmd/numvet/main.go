// Command numvet is a repo-specific static analyzer for numerical code.
// It type-checks the requested packages from source (standard library
// tooling only — go/parser and go/types with a module-aware importer) and
// reports classes of problems that plague reliability solvers:
//
//   - float-eq: == or != between floating-point values. Solver results
//     come out of iterative algorithms and quadrature; exact comparison
//     is almost always a latent bug. Use core.AlmostEqual.
//   - panic: panic() in a library (non-main) package outside a Must*
//     convenience constructor. Library code must return errors so a
//     service embedding the solvers can reject bad models gracefully.
//   - ignored-err: an expression statement discarding the error returned
//     by one of this module's own APIs.
//   - time-sleep: time.Sleep in library code; waits must go through a
//     timer in a select so a context can interrupt them.
//   - unbounded-loop: a condition-less for-loop in library code with no
//     structural bound.
//   - goroutine-no-ctx: a go statement in library code with no
//     context.Context anywhere in the launched call — arguments, callee,
//     or closure capture. Such goroutines cannot be canceled.
//   - defer-in-loop: a defer directly inside a loop body; the deferred
//     calls pile up until the function returns, which in a solver's hot
//     loop means unbounded memory and late cleanup.
//   - slog-corr: a log/slog call inside an HTTP handler (any function —
//     or enclosing function — taking *http.Request) in a main package
//     without a "corr" field. Serve-path logs must carry the request's
//     correlation ID so every line joins to its trace and wide event.
//
// A finding can be acknowledged with a same-line comment:
//
//	if a == b { //numvet:allow float-eq exact equality short-circuits
//
// Usage:
//
//	numvet ./internal/...
//
// Exits 1 when findings remain, making it suitable for scripts/check.sh.
package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the analysis and returns the process exit code.
func run(patterns []string, out *os.File) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		return 0, err
	}
	findings, err := vetDirs(modRoot, modPath, patterns)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "numvet: %d finding(s)\n", len(findings))
		return 1, nil
	}
	return 0, nil
}

// vetDirs expands the patterns against the module root and analyzes every
// matched package.
func vetDirs(modRoot, modPath string, patterns []string) ([]Finding, error) {
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)
	var findings []Finding
	for _, dir := range dirs {
		rel, err := importPathFor(modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		_, files, err := l.checkDir(rel, dir, info)
		if err != nil {
			return nil, err
		}
		findings = append(findings, vetPackage(l.fset, files, info, modPath)...)
	}
	return findings, nil
}

// importPathFor maps a directory under the module root to its import path.
func importPathFor(modRoot, modPath, dir string) (string, error) {
	rel, err := relSlash(modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + rel, nil
}
