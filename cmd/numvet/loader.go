package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks packages of one module from source. The
// stdlib source importer resolves standard-library imports; imports below
// the module path are resolved against the module root on disk, so the
// whole pipeline needs nothing beyond the standard library and the
// checkout itself.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	pkgs    map[string]*types.Package
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
	}
}

// Import implements types.Importer over module-internal and stdlib paths.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(path, l.modPath)
		dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
		pkg, _, err := l.checkDir(path, dir, nil)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// checkDir parses the non-test files of the package in dir and
// type-checks them, filling info when non-nil. It returns the checked
// package and its files.
func (l *loader) checkDir(importPath, dir string, info *types.Info) (*types.Package, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return pkg, files, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves command-line package patterns ("./internal/...",
// "./internal/dist") into directories containing Go files.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		if !recursive {
			if hasGoFiles(dir) {
				add(dir)
			}
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); strings.HasPrefix(name, ".") || name == "testdata" {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// relSlash returns dir relative to root in slash form.
func relSlash(root, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	return filepath.ToSlash(rel), nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
