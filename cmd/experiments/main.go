// Command experiments regenerates the reproduction tables E1–E12 indexed in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E4    # run one experiment
//	experiments -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("run", "", "run a single experiment by ID (e.g. E3)")
	list := fs.Bool("list", false, "list experiments and exit")
	asCSV := fs.Bool("csv", false, "emit CSV instead of an aligned table (with -run)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := experiments.Registry()
	if err != nil {
		return err
	}
	if *list {
		for _, id := range reg.IDs() {
			e, err := reg.Get(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *only != "" {
		e, err := reg.Get(*only)
		if err != nil {
			return err
		}
		tbl, err := e.Run()
		if err != nil {
			return err
		}
		if *asCSV {
			return tbl.WriteCSV(stdout)
		}
		return tbl.Fprint(stdout)
	}
	if *asCSV {
		return fmt.Errorf("experiments: -csv requires -run <id>")
	}
	return reg.RunAll(stdout)
}
