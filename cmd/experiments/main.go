// Command experiments regenerates the reproduction tables E1–E12 indexed in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # run everything
//	experiments -bench out.json  # also write the solver-telemetry records there
//	experiments -run E4          # run one experiment
//	experiments -list            # list experiment IDs and titles
//
// With -bench, each experiment executes under a solver trace (see
// internal/obs) and a per-experiment summary — dominant solver,
// iteration count, wall time — is serialized to the given path. The
// committed BENCH_solvers.json trajectory file is owned by cmd/relbench,
// which aggregates several runs into stable statistics; regenerate it
// with `go run ./cmd/relbench -runs 3 -out BENCH_solvers.json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("run", "", "run a single experiment by ID (e.g. E3)")
	list := fs.Bool("list", false, "list experiments and exit")
	asCSV := fs.Bool("csv", false, "emit CSV instead of an aligned table (with -run)")
	benchPath := fs.String("bench", "", "write per-experiment solver telemetry to this file when running everything (see cmd/relbench for the committed baseline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := experiments.Registry()
	if err != nil {
		return err
	}
	if *list {
		for _, id := range reg.IDs() {
			e, err := reg.Get(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *only != "" {
		e, err := reg.Get(*only)
		if err != nil {
			return err
		}
		tbl, err := e.Run(obs.Nop())
		if err != nil {
			return err
		}
		if *asCSV {
			return tbl.WriteCSV(stdout)
		}
		return tbl.Fprint(stdout)
	}
	if *asCSV {
		return fmt.Errorf("experiments: -csv requires -run <id>")
	}
	if *benchPath == "" {
		return reg.RunAll(stdout)
	}
	entries, err := experiments.RunAllWithBench(stdout)
	if err != nil {
		return err
	}
	f, err := os.Create(*benchPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d experiments)\n", *benchPath, len(entries))
	return f.Close()
}
