package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E12"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s: %q", id, out.String())
		}
	}
}

func TestRunSingle(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E5 — ") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "E99"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E5", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "lambda/mu,") {
		t.Errorf("csv output: %q", out.String())
	}
	if err := run([]string{"-csv"}, &strings.Builder{}); err == nil {
		t.Error("-csv without -run accepted")
	}
}
