package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E12"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s: %q", id, out.String())
		}
	}
}

func TestRunSingle(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E5 — ") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "E99"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E5", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "lambda/mu,") {
		t.Errorf("csv output: %q", out.String())
	}
	if err := run([]string{"-csv"}, &strings.Builder{}); err == nil {
		t.Error("-csv without -run accepted")
	}
}

func TestRunAllWritesBenchFile(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	path := filepath.Join(t.TempDir(), "BENCH_solvers.json")
	var out strings.Builder
	if err := run([]string{"-bench", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []experiments.BenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	seen := make(map[string]experiments.BenchEntry, len(entries))
	for _, e := range entries {
		seen[e.ID] = e
	}
	for i := 1; i <= 12; i++ {
		id := "E" + strconv.Itoa(i)
		e, ok := seen[id]
		if !ok {
			t.Errorf("bench file missing %s", id)
			continue
		}
		if e.Solver == "" {
			t.Errorf("%s has no solver label", id)
		}
		if e.WallMS <= 0 {
			t.Errorf("%s wall_ms = %g", id, e.WallMS)
		}
	}
	// The iterative experiments must surface nonzero iteration counts.
	for _, id := range []string{"E3", "E6", "E7"} {
		if seen[id].Iterations == 0 {
			t.Errorf("%s recorded no solver iterations", id)
		}
	}
}
