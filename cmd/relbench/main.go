// Command relbench tracks solver performance across the experiment
// suite E1–E13. It runs every experiment N times, folds the wall times
// into stable statistics (median and p95 per experiment), optionally
// writes the records to a JSON file, and optionally compares them
// against a committed baseline with a tolerance band — exiting nonzero
// when an experiment regressed.
//
// Usage:
//
//	relbench -runs 3 -out BENCH_solvers.json     # refresh the committed baseline
//	relbench -compare                            # run once, compare against BENCH_solvers.json
//	relbench -compare -factor 10 -slack-ms 250   # CI smoke with a wide band
//	relbench -compare -replay current.json       # compare a saved run, no re-run
//
// The tolerance band flags an experiment only when its wall time
// exceeds the baseline by BOTH the multiplicative factor and the
// absolute slack; dominant-solver changes and iteration growth are
// deterministic and flagged outright. See internal/bench.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("relbench", flag.ContinueOnError)
	runs := fs.Int("runs", 1, "full suite runs to aggregate (median/p95 across runs)")
	out := fs.String("out", "", "write the aggregated records to this file")
	baseline := fs.String("baseline", "BENCH_solvers.json", "baseline records file for -compare")
	compare := fs.Bool("compare", false, "compare against -baseline and fail on regression")
	replay := fs.String("replay", "", "compare this saved records file instead of running the suite")
	factor := fs.Float64("factor", 0, "wall-time slowdown factor tolerated (0 = default band)")
	slack := fs.Float64("slack-ms", 0, "absolute wall-time slack in ms (0 = default band)")
	tables := fs.Bool("tables", false, "also print each experiment's result table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var entries []experiments.BenchEntry
	var err error
	if *replay != "" {
		entries, err = bench.Load(*replay)
	} else {
		sink := io.Discard
		if *tables {
			sink = stdout
		}
		entries, err = bench.Collect(*runs, sink)
	}
	if err != nil {
		return err
	}

	for _, e := range entries {
		fmt.Fprintf(stdout, "%-4s %-16s wall=%.3fms p95=%.3fms iters=%d\n",
			e.ID, e.Solver, e.WallMS, e.WallMSP95, e.Iterations)
	}
	if *out != "" {
		if err := bench.Write(*out, entries); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d experiments, %d run(s))\n", *out, len(entries), *runs)
	}
	if !*compare {
		return nil
	}

	base, err := bench.Load(*baseline)
	if err != nil {
		return err
	}
	regs := bench.Compare(entries, base, bench.Tolerance{WallFactor: *factor, SlackMS: *slack})
	for _, r := range regs {
		fmt.Fprintln(stdout, "regression:", r)
	}
	if len(regs) > 0 {
		return fmt.Errorf("%d regression(s) against %s", len(regs), *baseline)
	}
	fmt.Fprintf(stdout, "relbench: %d experiments within tolerance of %s\n", len(entries), *baseline)
	return nil
}
