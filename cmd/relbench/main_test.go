package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func writeRecords(t *testing.T, name string, entries []experiments.BenchEntry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := bench.Write(path, entries); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareExitsNonzeroOnInjectedSlowdown is the acceptance lock for
// the regression gate: a records file whose wall times are 10x the
// baseline must fail the compare, and the identical file must pass.
// Replay mode keeps the test deterministic — no experiments run.
func TestCompareExitsNonzeroOnInjectedSlowdown(t *testing.T) {
	baseline := []experiments.BenchEntry{
		{ID: "E1", Solver: "bdd", WallMS: 200},
		{ID: "E3", Solver: "sor", Iterations: 52, WallMS: 22},
	}
	slowed := []experiments.BenchEntry{
		{ID: "E1", Solver: "bdd", WallMS: 2000},
		{ID: "E3", Solver: "sor", Iterations: 52, WallMS: 220},
	}
	basePath := writeRecords(t, "baseline.json", baseline)
	slowPath := writeRecords(t, "slowed.json", slowed)

	var out bytes.Buffer
	err := run([]string{"-compare", "-replay", slowPath, "-baseline", basePath}, &out)
	if err == nil {
		t.Fatalf("10x slowdown passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "regression: E1") {
		t.Errorf("E1 regression not reported:\n%s", out.String())
	}

	out.Reset()
	samePath := writeRecords(t, "same.json", baseline)
	if err := run([]string{"-compare", "-replay", samePath, "-baseline", basePath}, &out); err != nil {
		t.Fatalf("identical records failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Errorf("clean compare did not report success:\n%s", out.String())
	}
}

func TestCompareAgainstCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	// The wide band mirrors the scripts/check.sh smoke: machines differ,
	// but the committed baseline should never be 10x+250ms away.
	var out bytes.Buffer
	err := run([]string{
		"-compare",
		"-baseline", filepath.Join("..", "..", "BENCH_solvers.json"),
		"-factor", "10", "-slack-ms", "250",
	}, &out)
	if err != nil {
		t.Fatalf("committed baseline failed the gate: %v\n%s", err, out.String())
	}
}

func TestOutWritesAggregatedRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-runs", "1", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := bench.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 13 {
		t.Fatalf("wrote %d entries, want >= 13", len(entries))
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("missing write confirmation:\n%s", out.String())
	}
}

func TestRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-compare", "-replay", "no-such-file.json"}, &out); err == nil {
		t.Error("missing replay file did not error")
	}
	if err := run([]string{"-compare", "-replay", "no-such.json", "-baseline", "also-missing.json"}, &out); err == nil {
		t.Error("missing baseline did not error")
	}
}
