// Package repro is the root of the reliability-and-availability modeling
// reproduction (DSN 2016 tutorial, Trivedi). The solver library lives
// under internal/ (see README.md for the map), runnable case studies under
// examples/, command-line tools under cmd/, and the benchmark harness that
// regenerates every experiment table in this package's *_test.go files.
package repro
