#!/usr/bin/env bash
# Repo-wide check pipeline: formatting, vet, build, race-enabled tests,
# and the numerical-hygiene analyzer over the library packages. CI and
# pre-commit both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fallback-chain race stress"
go test -race -run='^TestChainStressRace$' -count=4 ./internal/guard/

echo "== bench smoke"
go test -bench=. -benchtime=1x -run='^$' ./...

echo "== numvet"
go run ./cmd/numvet ./internal/...

# Static structural analysis over every bundled model except the
# deliberately-broken lint fixtures; fails on error-severity findings.
echo "== relcli analyze"
go run ./cmd/relcli analyze $(ls models/*.json | grep -v broken_)

# Serve smoke: boot the real server on a free port, push one solve
# through it, and assert the dashboard renders and the trace store
# retained the request. This is the only check that exercises the
# binary end to end over TCP rather than httptest.
echo "== serve smoke"
go build -o /tmp/relcli-smoke ./cmd/relcli
/tmp/relcli-smoke serve -addr 127.0.0.1:0 > /tmp/relcli-smoke.out 2>&1 &
SMOKE_PID=$!
trap 'kill "$SMOKE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "serving on" /tmp/relcli-smoke.out && break
    sleep 0.1
done
SMOKE_ADDR=$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' /tmp/relcli-smoke.out | head -n1)
if [[ -z "$SMOKE_ADDR" ]]; then
    echo "serve smoke: server never announced an address" >&2
    cat /tmp/relcli-smoke.out >&2
    exit 1
fi
curl -sSf -X POST --data-binary @models/repairfarm.json "http://$SMOKE_ADDR/solve" > /dev/null
ui=$(curl -sSf "http://$SMOKE_ADDR/ui")
if [[ -z "$ui" ]] || ! grep -q "reldash" <<< "$ui"; then
    echo "serve smoke: /ui did not render the dashboard" >&2
    exit 1
fi
if ! curl -sSf "http://$SMOKE_ADDR/api/traces" | grep -q '"endpoint": "solve"'; then
    echo "serve smoke: /api/traces does not contain the solve" >&2
    exit 1
fi
kill "$SMOKE_PID" 2>/dev/null || true
trap - EXIT

# Solver performance gate: one suite run compared against the committed
# baseline with a wide band (10x + 250ms) so only order-of-magnitude
# regressions fail CI regardless of machine speed. Tighten locally with
# `go run ./cmd/relbench -compare` (default band: 4x + 25ms).
echo "== relbench regression gate"
go run ./cmd/relbench -compare -factor 10 -slack-ms 250

# Fuzz smoke is opt-in (CHECK_FUZZ=1): ten seconds per target over the
# modelio JSON parser, seeded from models/*.json. Go allows one -fuzz
# target per invocation, hence the loop.
if [[ "${CHECK_FUZZ:-0}" == "1" ]]; then
    for target in FuzzLoadDocument FuzzLint; do
        echo "== fuzz smoke: $target"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime=10s ./internal/modelio/
    done
    echo "== fuzz smoke: FuzzSolveBody"
    go test -run='^$' -fuzz='^FuzzSolveBody$' -fuzztime=10s ./cmd/relcli/
fi

# Chaos smoke is opt-in (CHECK_CHAOS=1): the seeded fault-injection
# drill from `relcli chaos` under the race detector — a 200-request
# swarm against the real handler stack with every resilience invariant
# enforced (typed outcomes, finite results, breaker open/re-close, no
# goroutine leaks). The seed is fixed so failures reproduce exactly.
if [[ "${CHECK_CHAOS:-0}" == "1" ]]; then
    echo "== chaos smoke"
    go run -race ./cmd/relcli chaos -requests 200 -swarm 8 -seed 42
    # Durability drill: kill a checkpointing serve process mid-sweep,
    # resume from the write-ahead log on a fresh one, and demand the
    # folded quantiles come out bit-identical to an uninterrupted run.
    echo "== chaos kill-resume"
    go run -race ./cmd/relcli chaos -kill-resume -seed 42
fi

echo "all checks passed"
