#!/usr/bin/env bash
# Repo-wide check pipeline: formatting, vet, build, race-enabled tests,
# and the numerical-hygiene analyzer over the library packages. CI and
# pre-commit both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke"
go test -bench=. -benchtime=1x -run='^$' ./...

echo "== numvet"
go run ./cmd/numvet ./internal/...

echo "all checks passed"
