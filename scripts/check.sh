#!/usr/bin/env bash
# Repo-wide check pipeline: formatting, vet, build, race-enabled tests,
# and the numerical-hygiene analyzer over the library packages. CI and
# pre-commit both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fallback-chain race stress"
go test -race -run='^TestChainStressRace$' -count=4 ./internal/guard/

echo "== bench smoke"
go test -bench=. -benchtime=1x -run='^$' ./...

echo "== numvet"
go run ./cmd/numvet ./internal/... ./cmd/relcli

# Static structural analysis over every bundled model except the
# deliberately-broken lint fixtures; fails on error-severity findings.
echo "== relcli analyze"
go run ./cmd/relcli analyze $(ls models/*.json | grep -v broken_)

# Serve smoke: boot the real server on a free port, push one solve
# through it, and assert the dashboard renders and the trace store
# retained the request. This is the only check that exercises the
# binary end to end over TCP rather than httptest.
echo "== serve smoke"
go build -o /tmp/relcli-smoke ./cmd/relcli
/tmp/relcli-smoke serve -addr 127.0.0.1:0 > /tmp/relcli-smoke.out 2>&1 &
SMOKE_PID=$!
trap 'kill "$SMOKE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    grep -q "serving on" /tmp/relcli-smoke.out && break
    sleep 0.1
done
SMOKE_ADDR=$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' /tmp/relcli-smoke.out | head -n1)
if [[ -z "$SMOKE_ADDR" ]]; then
    echo "serve smoke: server never announced an address" >&2
    cat /tmp/relcli-smoke.out >&2
    exit 1
fi
curl -sSf -X POST --data-binary @models/repairfarm.json "http://$SMOKE_ADDR/solve" > /dev/null
ui=$(curl -sSf "http://$SMOKE_ADDR/ui")
if [[ -z "$ui" ]] || ! grep -q "reldash" <<< "$ui"; then
    echo "serve smoke: /ui did not render the dashboard" >&2
    exit 1
fi
if ! curl -sSf "http://$SMOKE_ADDR/api/traces" | grep -q '"endpoint": "solve"'; then
    echo "serve smoke: /api/traces does not contain the solve" >&2
    exit 1
fi
kill "$SMOKE_PID" 2>/dev/null || true
trap - EXIT

# Solver performance gate: one suite run compared against the committed
# baseline with a wide band (10x + 250ms) so only order-of-magnitude
# regressions fail CI regardless of machine speed. Tighten locally with
# `go run ./cmd/relbench -compare` (default band: 4x + 25ms).
echo "== relbench regression gate"
go run ./cmd/relbench -compare -factor 10 -slack-ms 250

# Fuzz smoke is opt-in (CHECK_FUZZ=1): ten seconds per target over the
# modelio JSON parser, seeded from models/*.json. Go allows one -fuzz
# target per invocation, hence the loop.
if [[ "${CHECK_FUZZ:-0}" == "1" ]]; then
    for target in FuzzLoadDocument FuzzLint; do
        echo "== fuzz smoke: $target"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime=10s ./internal/modelio/
    done
    echo "== fuzz smoke: FuzzSolveBody"
    go test -run='^$' -fuzz='^FuzzSolveBody$' -fuzztime=10s ./cmd/relcli/
fi

# Chaos smoke is opt-in (CHECK_CHAOS=1): the seeded fault-injection
# drill from `relcli chaos` under the race detector — a 200-request
# swarm against the real handler stack with every resilience invariant
# enforced (typed outcomes, finite results, breaker open/re-close, no
# goroutine leaks). The seed is fixed so failures reproduce exactly.
if [[ "${CHECK_CHAOS:-0}" == "1" ]]; then
    echo "== chaos smoke"
    go run -race ./cmd/relcli chaos -requests 200 -swarm 8 -seed 42
    # Durability drill: kill a checkpointing serve process mid-sweep,
    # resume from the write-ahead log on a fresh one, and demand the
    # folded quantiles come out bit-identical to an uninterrupted run.
    echo "== chaos kill-resume"
    go run -race ./cmd/relcli chaos -kill-resume -seed 42
fi

# SLO smoke is opt-in (CHECK_SLO=1): boot the real server with a tight
# availability objective and a deterministic 1-in-2 build failure, push
# enough traffic to blow the error budget, and assert over /api/slo that
# the burn-rate alert actually fired. Then close the loop the other way:
# take a correlation ID off a wide-event line and resolve it back to its
# trace through /api/traces?corr=.
if [[ "${CHECK_SLO:-0}" == "1" ]]; then
    echo "== slo smoke"
    SLO_DIR=$(mktemp -d /tmp/relcli-slo.XXXXXX)
    trap 'kill "${SLO_PID:-0}" 2>/dev/null || true; rm -rf "$SLO_DIR"' EXIT
    cat > "$SLO_DIR/objectives.json" <<'EOF'
{"objectives": [
  {"name": "smoke-avail", "target": 0.99, "match": {"route": "/solve"}}
]}
EOF
    go build -o "$SLO_DIR/relcli" ./cmd/relcli
    "$SLO_DIR/relcli" serve -addr 127.0.0.1:0 \
        -slo "$SLO_DIR/objectives.json" \
        -wide-events "$SLO_DIR/wide.jsonl" -wide-sample 1 \
        -failpoints 'modelio.build:1-in-2->error(injected)' \
        > "$SLO_DIR/serve.out" 2>&1 &
    SLO_PID=$!
    for _ in $(seq 50); do
        grep -q "serving on" "$SLO_DIR/serve.out" && break
        sleep 0.1
    done
    SLO_ADDR=$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' "$SLO_DIR/serve.out" | head -n1)
    if [[ -z "$SLO_ADDR" ]]; then
        echo "slo smoke: server never announced an address" >&2
        cat "$SLO_DIR/serve.out" >&2
        exit 1
    fi
    # 1-in-2 fires on every odd evaluation, so failures never run 5 in a
    # row and the breaker stays closed: exactly half of these 40 solves
    # 500, a 50x burn against the 1% budget.
    for _ in $(seq 40); do
        curl -s -o /dev/null -X POST --data-binary @models/repairfarm.json \
            "http://$SLO_ADDR/solve" || true
    done
    slo_json=$(curl -sSf "http://$SLO_ADDR/api/slo")
    if ! jq -e '.objectives[] | select(.name == "smoke-avail") | .breaching' \
            <<< "$slo_json" > /dev/null; then
        echo "slo smoke: smoke-avail never breached under 50% injected failures" >&2
        echo "$slo_json" >&2
        exit 1
    fi
    if ! jq -e '.objectives[] | select(.name == "smoke-avail") | .budget_remaining < 1' \
            <<< "$slo_json" > /dev/null; then
        echo "slo smoke: error budget did not burn" >&2
        echo "$slo_json" >&2
        exit 1
    fi
    corr=$(jq -r 'select(.trace != null and .trace != "") | .corr' \
        "$SLO_DIR/wide.jsonl" | head -n1)
    if [[ -z "$corr" ]]; then
        echo "slo smoke: no wide event carries a trace ID" >&2
        cat "$SLO_DIR/wide.jsonl" >&2
        exit 1
    fi
    if ! curl -sSf "http://$SLO_ADDR/api/traces?corr=$corr" | grep -q "\"$corr\""; then
        echo "slo smoke: /api/traces?corr=$corr did not resolve the wide event's trace" >&2
        exit 1
    fi
    kill "$SLO_PID" 2>/dev/null || true
    wait "$SLO_PID" 2>/dev/null || true
    rm -rf "$SLO_DIR"
    trap - EXIT
fi

echo "all checks passed"
