#!/usr/bin/env bash
# Repo-wide check pipeline: formatting, vet, build, race-enabled tests,
# and the numerical-hygiene analyzer over the library packages. CI and
# pre-commit both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fallback-chain race stress"
go test -race -run='^TestChainStressRace$' -count=4 ./internal/guard/

echo "== bench smoke"
go test -bench=. -benchtime=1x -run='^$' ./...

echo "== numvet"
go run ./cmd/numvet ./internal/...

# Static structural analysis over every bundled model except the
# deliberately-broken lint fixtures; fails on error-severity findings.
echo "== relcli analyze"
go run ./cmd/relcli analyze $(ls models/*.json | grep -v broken_)

# Solver performance gate: one suite run compared against the committed
# baseline with a wide band (10x + 250ms) so only order-of-magnitude
# regressions fail CI regardless of machine speed. Tighten locally with
# `go run ./cmd/relbench -compare` (default band: 4x + 25ms).
echo "== relbench regression gate"
go run ./cmd/relbench -compare -factor 10 -slack-ms 250

# Fuzz smoke is opt-in (CHECK_FUZZ=1): ten seconds per target over the
# modelio JSON parser, seeded from models/*.json. Go allows one -fuzz
# target per invocation, hence the loop.
if [[ "${CHECK_FUZZ:-0}" == "1" ]]; then
    for target in FuzzLoadDocument FuzzLint; do
        echo "== fuzz smoke: $target"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime=10s ./internal/modelio/
    done
fi

echo "all checks passed"
